//! The scan engine: target walk → paced probes → validated, deduplicated,
//! classified results.

use crate::checkpoint::{config_digest, CheckpointPolicy, CheckpointState, JournalError};
use crate::config::{DedupMethod, ScanConfig};
use crate::log::{Level, Logger};
use crate::metadata::{ConfigEcho, Counters, PermutationEcho, ScanMetadata};
use crate::metrics::{CounterId, HistId, ScanMetrics};
use crate::monitor::{Monitor, StatusUpdate};
use crate::output::ScanResult;
use crate::plan::{build_any_template, AnyProbeBuilder, AnyStaged, AnyTemplate, ScanPlan};
use crate::ratecontrol::RateController;
use crate::shutdown::ShutdownToken;
use crate::transport::{FrameBatch, Transport};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::fmt;
use std::net::IpAddr;
use zmap_dedup::{PagedBitmap, SlidingWindow};
use zmap_metrics::{MetricsSnapshot, TraceSnapshot};
use zmap_netsim::SendError;
use zmap_targets::generator::BuildError;
use zmap_targets::TargetGenerator;

/// Outcome of a completed scan.
#[derive(Debug)]
pub struct ScanSummary {
    /// Probes sent.
    pub sent: u64,
    /// Targets in this shard.
    pub targets_total: u64,
    /// Responses that validated (cookie matched).
    pub responses_validated: u64,
    /// Frames that parsed but were not ours / failed validation.
    pub responses_discarded: u64,
    /// Duplicate responses suppressed by dedup.
    pub duplicates_suppressed: u64,
    /// Unique successful targets (open/answering).
    pub unique_successes: u64,
    /// Unique failed targets (RST/unreachable).
    pub unique_failures: u64,
    /// Send attempts retried after transient transport failures.
    pub send_retries: u64,
    /// Probes abandoned after exhausting retries.
    pub sendto_failures: u64,
    /// Responses rejected by checksum validation.
    pub responses_corrupted: u64,
    /// Checkpoint journals written (periodic plus final).
    pub checkpoints_written: u64,
    /// Times this scan has been resumed from a checkpoint journal.
    pub resume_count: u64,
    /// Supervisor interventions (threaded engine; always 0 here).
    pub watchdog_stalls: u64,
    /// 1 when the engine exited through the orderly shutdown path.
    pub shutdown_clean: u64,
    /// True when a fault schedule killed the process mid-flight: the
    /// summary is whatever a post-mortem harness could recover, not the
    /// product of an orderly exit.
    pub killed: bool,
    /// Virtual scan duration (ns), including cooldown.
    pub duration_ns: u64,
    /// The success records (plus failures when `report_failures`).
    pub results: Vec<ScanResult>,
    /// Per-second status samples.
    pub status: Vec<StatusUpdate>,
    /// Machine-readable metadata (stream #4).
    pub metadata: ScanMetadata,
    /// The metrics registry dump: latency histograms, the event trace,
    /// and the RTT-tracker overflow count (also folded into `metadata`).
    pub metrics: MetricsSnapshot,
}

impl ScanSummary {
    /// Fraction of targets that answered successfully.
    pub fn hitrate(&self) -> f64 {
        if self.targets_total == 0 {
            0.0
        } else {
            self.unique_successes as f64 / self.targets_total as f64
        }
    }
}

/// Optional run-time machinery for [`Scanner::run_with`]. `Default` is a
/// plain uninstrumented run.
#[derive(Debug)]
pub struct RunOptions {
    /// Write an initial, periodic (virtual-time interval), and final
    /// checkpoint journal to this policy's path.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Cooperative shutdown: once requested, sending stops at the next
    /// cycle boundary and the scan proceeds straight through cooldown to
    /// an orderly exit (all four streams flushed, final checkpoint).
    pub shutdown: Option<ShutdownToken>,
    /// Consecutive cooldown-drain polls with a frozen progress signature
    /// (virtual clock, pending-RX timestamp, RX counters) tolerated
    /// before the drain watchdog declares the transport stalled, records
    /// a `watchdog_stalls` intervention, and abandons the wait. Without
    /// it, a transport whose clock stops advancing pins the drain loop
    /// forever. The supervisor converts `--watchdog-secs` into this.
    pub watchdog_poll_limit: u64,
    /// Schedule-aligned resume: re-enter the global rate schedule at the
    /// slot the rewound walk position corresponds to, so a replayed
    /// probe departs at exactly the virtual time its uninterrupted twin
    /// would have. Exact for single-subshard scans (the supervisor's
    /// worker shape); `false` (the default) keeps the historical resume
    /// pacing, which restarts the schedule from the transport's clock.
    pub align_resume: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            checkpoint: None,
            shutdown: None,
            watchdog_poll_limit: crate::parallel::DEFAULT_WATCHDOG_POLL_LIMIT,
            align_resume: false,
        }
    }
}

/// Why [`Scanner::resume`] refused to build.
#[derive(Debug)]
pub enum ResumeError {
    /// The journal is damaged or does not belong to this configuration.
    Journal(JournalError),
    /// The configuration itself failed validation.
    Build(BuildError),
    /// The journal belongs to this scan (same config once the shard
    /// spec is set aside) but records a different slice of it — e.g. a
    /// supervisor migrating worker 2's journal onto worker 3. Distinct
    /// from [`ResumeError::Journal`] so the caller can name both specs
    /// instead of surfacing an opaque digest mismatch. Tuples are
    /// `(shard, num_shards, num_subshards)`.
    ShardSpec {
        /// The spec recorded in the journal.
        journal: (u32, u32, u32),
        /// The spec the offered configuration targets.
        config: (u32, u32, u32),
    },
}

impl fmt::Display for ResumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResumeError::Journal(e) => write!(f, "cannot resume: {e}"),
            ResumeError::Build(e) => write!(f, "cannot resume: {e}"),
            ResumeError::ShardSpec { journal, config } => write!(
                f,
                "cannot resume: journal records shard {}/{} ({} subshards) but the \
                 offered config targets shard {}/{} ({} subshards); a journal only \
                 resumes the exact shard that wrote it",
                journal.0, journal.1, journal.2, config.0, config.1, config.2,
            ),
        }
    }
}

impl std::error::Error for ResumeError {}

enum DedupState {
    None,
    Bitmap(Box<PagedBitmap>),
    Window(SlidingWindow),
}

impl DedupState {
    /// Observes a response by its plan-derived key. For v4 the key is
    /// `target_key(ip, port)`; for v6 it is the compact per-prefix index
    /// (the bitmap arm is unreachable there — v6 + full-bitmap is
    /// rejected at plan build).
    fn observe(&mut self, ip: IpAddr, key: u64) -> bool {
        match self {
            DedupState::None => true,
            // The bitmap indexes bare 32-bit addresses, so it is only
            // selected for single-port v4 scans (enforced at assemble /
            // plan build); feeding it a (ip, port) composite would
            // silently truncate.
            DedupState::Bitmap(b) => {
                let IpAddr::V4(v4) = ip else {
                    unreachable!("full-bitmap dedup is rejected for v6 plans")
                };
                zmap_dedup::Deduplicator::observe(&mut **b, u64::from(u32::from(v4)))
            }
            DedupState::Window(w) => w.check_and_insert(key),
        }
    }
}

/// The scanner engine. Generic over [`Transport`].
pub struct Scanner<T: Transport> {
    cfg: ScanConfig,
    transport: T,
    builder: AnyProbeBuilder,
    /// The per-scan packet template (paper §4.4): the frame is laid out
    /// once here; the hot loop only patches addresses and checksums.
    template: AnyTemplate,
    gen: ScanPlan,
    dedup: DedupState,
    logger: Logger,
    rng: StdRng,
    /// Counters carried over from the journal when resuming (so metadata
    /// reports the cumulative truth across attempts); zero for fresh runs.
    baseline: Counters,
    /// Per-subshard element positions to fast-forward to before sending
    /// (already rewound by the in-flight grace window); `None` fresh.
    start_positions: Option<Vec<u64>>,
}

impl<T: Transport> Scanner<T> {
    /// Validates the configuration and prepares the permutation.
    pub fn new(cfg: ScanConfig, transport: T) -> Result<Self, BuildError> {
        Self::with_logger(cfg, transport, Logger::null())
    }

    /// Like [`new`](Self::new) with an explicit logger (stream #2).
    pub fn with_logger(
        cfg: ScanConfig,
        transport: T,
        logger: Logger,
    ) -> Result<Self, BuildError> {
        Self::assemble(cfg, transport, logger, None)
    }

    /// Rebuilds a scanner from a checkpoint journal: the cyclic-group walk
    /// is reconstructed from the journal's recorded parts (not re-derived
    /// from the seed), per-subshard positions are rewound by the in-flight
    /// grace window, and the journal's counters become the baseline so the
    /// resumed run's metadata is cumulative across attempts.
    ///
    /// Refuses a journal whose config digest does not match `cfg` — a
    /// journal only resumes the exact scan that wrote it.
    pub fn resume(
        cfg: ScanConfig,
        transport: T,
        journal: &CheckpointState,
    ) -> Result<Self, ResumeError> {
        Self::resume_with_logger(cfg, transport, journal, Logger::null())
    }

    /// Like [`resume`](Self::resume) with an explicit logger.
    pub fn resume_with_logger(
        cfg: ScanConfig,
        transport: T,
        journal: &CheckpointState,
        logger: Logger,
    ) -> Result<Self, ResumeError> {
        check_shard_spec(journal, &cfg)?;
        journal.check_config(&cfg).map_err(ResumeError::Journal)?;
        let mut scanner = Self::assemble(
            cfg,
            transport,
            logger,
            Some((journal.generator, journal.offset)),
        )
        .map_err(ResumeError::Build)?;
        if scanner.gen.permutation().0 != journal.group_prime {
            // The digest already covers the target space, so this only
            // trips on a corrupted-yet-checksum-valid journal; belt and
            // braces before walking the wrong group. For v6 the prime
            // slot carries the walk-plan fingerprint, so this also
            // catches a journal written against a different prefix list.
            return Err(ResumeError::Journal(JournalError::Malformed(
                "journal group prime does not match the configured target space".into(),
            )));
        }
        let mut baseline = journal.counters;
        baseline.resume_count += 1;
        baseline.shutdown_clean = 0;
        let positions = journal.rewound_positions(scanner.cfg.rate_pps);
        scanner.logger.info(format_args!(
            "resuming scan (attempt {}): {} probes sent so far, rewinding to positions {:?}",
            baseline.resume_count + 1,
            baseline.sent,
            positions,
        ));
        scanner.baseline = baseline;
        scanner.start_positions = Some(positions);
        Ok(scanner)
    }

    fn assemble(
        cfg: ScanConfig,
        transport: T,
        logger: Logger,
        cycle_parts: Option<(u64, u64)>,
    ) -> Result<Self, BuildError> {
        let ports = crate::plan::effective_ports(&cfg);
        if cfg.dedup == DedupMethod::FullBitmap && ports.len() > 1 {
            return Err(BuildError::Config(
                "full-bitmap dedup indexes bare IPv4 addresses and cannot \
                 distinguish ports; use window dedup for multi-port scans"
                    .into(),
            ));
        }
        // In v6 mode the journaled cycle parts are ignored: the walk plan
        // is a pure function of (prefix list, ports, seed) and the resume
        // gate compares its fingerprint instead.
        let gen = ScanPlan::build(&cfg, cycle_parts)?;
        let builder = AnyProbeBuilder::build(&cfg);
        // Laying the template out now also validates the one per-probe
        // construction failure (oversized UDP payload) at setup time,
        // keeping the TX hot path infallible.
        let template = build_any_template(&cfg.probe, &builder)
            .map_err(|e| BuildError::Config(format!("cannot build probe template: {e}")))?;
        let dedup = match cfg.dedup {
            DedupMethod::None => DedupState::None,
            DedupMethod::FullBitmap => DedupState::Bitmap(Box::new(PagedBitmap::new())),
            DedupMethod::Window(n) => DedupState::Window(SlidingWindow::new(n)),
        };
        let (prime, generator, _) = gen.permutation();
        logger.info(format_args!(
            "scan configured: {} targets in shard {}/{}, group p={}, generator={}",
            gen.target_count(),
            cfg.shard,
            cfg.num_shards,
            prime,
            generator,
        ));
        Ok(Scanner {
            rng: StdRng::seed_from_u64(cfg.seed ^ 0x005E_ED1D),
            cfg,
            transport,
            builder,
            template,
            gen,
            dedup,
            logger,
            baseline: Counters::default(),
            start_positions: None,
        })
    }

    /// The v4 target generator (inspectable before running); `None` in
    /// IPv6 mode — use [`plan`](Self::plan) for the family-generic view.
    pub fn generator(&self) -> Option<&TargetGenerator> {
        match &self.gen {
            ScanPlan::V4(gen) => Some(gen),
            ScanPlan::V6(_) => None,
        }
    }

    /// The address-family plan (inspectable before running).
    pub fn plan(&self) -> &ScanPlan {
        &self.gen
    }

    /// The configuration (read-only).
    pub fn config(&self) -> &ScanConfig {
        &self.cfg
    }

    /// Runs the scan to completion (send phase + cooldown) and returns
    /// the summary. Consumes the scanner.
    pub fn run(self) -> ScanSummary {
        self.run_with(RunOptions::default())
    }

    /// Like [`run`](Self::run) with checkpointing and cooperative
    /// shutdown wired in.
    pub fn run_with(self, opts: RunOptions) -> ScanSummary {
        let RunOptions {
            checkpoint,
            shutdown,
            watchdog_poll_limit,
            align_resume,
        } = opts;
        let Scanner {
            cfg,
            mut transport,
            builder,
            template,
            gen,
            mut dedup,
            logger,
            mut rng,
            baseline,
            start_positions,
        } = self;
        let digest = config_digest(&cfg);
        let start = transport.now();
        let mut rc = RateController::new(start, cfg.rate_pps);
        let mut monitor = Monitor::new();
        let metrics = ScanMetrics::new(1, baseline);
        let mut results: Vec<ScanResult> = Vec::new();

        // Shard-local target count (exact only for the whole scan; for a
        // shard we estimate as total/shards for progress display).
        let whole = gen.target_count();
        let shard_targets = if cfg.max_targets > 0 {
            cfg.max_targets
        } else {
            whole / u64::from(cfg.num_shards.max(1))
        };

        // Interleave subshard iterators round-robin: this reproduces the
        // temporal mixing of ZMap's concurrent send threads while staying
        // deterministic.
        let subshards = cfg.subshards.max(1);
        let mut iters: Vec<_> = (0..subshards)
            .map(|t| gen.iter_shard(cfg.shard, t))
            .collect();
        if let Some(positions) = &start_positions {
            for (it, &p) in iters.iter_mut().zip(positions.iter()) {
                it.fast_forward_elements(p);
            }
            if align_resume {
                // Schedule-aligned resume: the first replayed probe must
                // depart at the slot its uninterrupted twin occupied, not
                // at slot 0 of a restarted schedule. Count the targets
                // the walk accepted before each rewound position with a
                // throwaway iterator — an accept that lands past the
                // position is the resumed stream's first yield, so it is
                // not counted — then skip the schedule that many slots.
                let mut replayed = 0u64;
                for (t, &p) in positions.iter().enumerate() {
                    let mut probe_iter = gen.iter_shard(cfg.shard, t as u32);
                    while probe_iter.elements_consumed() < p {
                        if probe_iter.next().is_none() {
                            break;
                        }
                        if probe_iter.elements_consumed() <= p {
                            replayed += 1;
                        } else {
                            break;
                        }
                    }
                }
                let slots = replayed * u64::from(cfg.probes_per_target.max(1));
                rc.fast_forward(slots);
                metrics.trace(0, "resume_align", slots);
            }
        }
        let mut live: Vec<usize> = (0..iters.len()).collect();
        let mut next = 0usize;
        let mut done = false;
        let mut killed = false;
        let mut interrupted = false;
        let mut stalled = false;
        let mut last_ckpt_at = 0u64;

        metrics.trace(0, "scan_start", shard_targets);
        if start_positions.is_some() {
            metrics.trace(0, "resume_rewind", baseline.resume_count);
        }

        // An initial journal before the first probe: a kill at any point
        // after this — even probe #1 — leaves something to resume from.
        if let Some(policy) = &checkpoint {
            let positions: Vec<u64> = iters.iter().map(|it| it.elements_consumed()).collect();
            checkpoint_via_metrics(
                policy,
                digest,
                &cfg,
                gen.permutation(),
                positions,
                0,
                false,
                &metrics,
                &logger,
            );
        }

        // The TX hot path: probes are rendered from the per-scan template
        // into a reusable frame pool and flushed through one batched
        // transport call per `cfg.batch` targets — ZMap's packet template
        // plus sendmmsg shape. After the first batch fills, the loop
        // performs zero allocations per probe.
        let mut batch = FrameBatch::new(cfg.batch.max(1));
        let mut staged = AnyStaged::for_plan(&gen, cfg.batch.max(1));
        // Local mirror of the TargetsTotal counter (which includes any
        // resume baseline): the hot loop reads it once per target, and a
        // registry read walks every counter shard.
        let mut targets_total = metrics.get(CounterId::TargetsTotal);
        'scan: while !done {
            if shutdown.as_ref().is_some_and(|t| t.is_requested()) {
                interrupted = true;
                metrics.trace(
                    transport.now().saturating_sub(start),
                    "shutdown_requested",
                    0,
                );
                logger.info(format_args!(
                    "shutdown requested; stopping sends at cycle boundary"
                ));
                break 'scan;
            }
            if cfg.max_targets > 0 && targets_total >= cfg.max_targets {
                break;
            }
            // Pick the next target, rotating across subshards.
            let target = loop {
                if live.is_empty() {
                    break None;
                }
                next %= live.len();
                match iters[live[next]].next() {
                    Some(t) => {
                        next += 1;
                        break Some(t);
                    }
                    None => {
                        live.remove(next);
                    }
                }
            };
            let Some((ip, port)) = target else {
                break;
            };
            metrics.add(CounterId::TargetsTotal, 1);
            targets_total += 1;

            // TX-side keys never fail — the walk only yields in-space
            // targets — but degrade to no RTT stamp rather than panic.
            let rtt_key = gen.probe_key(ip, port).ok();
            for _ in 0..cfg.probes_per_target.max(1) {
                let at = rc.mark_sent();
                let entropy: u16 = rng.gen();
                // Tag each frame with the target count including its own
                // target, so a mid-batch kill can roll the count back to
                // exactly the targets whose probes were in flight.
                batch.reserve(at, targets_total);
                staged.push(ip, port, entropy);
                // Stamp the scheduled send time for RTT measurement;
                // retransmits to the same target keep the first stamp.
                if let Some(key) = rtt_key {
                    metrics.note_probe(key, at);
                }
            }
            if !batch.is_full() {
                continue;
            }

            staged.render(&template, &mut batch);
            match flush_batch(&mut transport, &batch, cfg.max_retries, &metrics) {
                FlushStatus::Killed { targets_in_flight } => {
                    metrics.store_absolute(CounterId::TargetsTotal, targets_in_flight);
                    killed = true;
                    break 'scan;
                }
                FlushStatus::Flushed => {}
            }
            batch.clear();

            drain_rx(
                &mut transport,
                &gen,
                &builder,
                &mut dedup,
                &logger,
                cfg.report_failures,
                start,
                &metrics,
                &mut results,
            );
            monitor.observe(
                transport.now().saturating_sub(start),
                &metrics,
                shard_targets * u64::from(cfg.probes_per_target.max(1)),
            );

            // Periodic snapshot on a virtual-time interval, at a cycle
            // boundary (never mid-target, so positions are consistent).
            if let Some(policy) = &checkpoint {
                let rel = transport.now().saturating_sub(start);
                if rel.saturating_sub(last_ckpt_at) >= policy.interval_ns {
                    let positions: Vec<u64> =
                        iters.iter().map(|it| it.elements_consumed()).collect();
                    checkpoint_via_metrics(
                        policy,
                        digest,
                        &cfg,
                        gen.permutation(),
                        positions,
                        rel,
                        false,
                        &metrics,
                        &logger,
                    );
                    last_ckpt_at = rel;
                }
            }

            if cfg.max_results > 0 && metrics.get(CounterId::UniqueSuccesses) >= cfg.max_results
            {
                logger.info(format_args!(
                    "max-results {} reached; entering cooldown",
                    cfg.max_results
                ));
                done = true;
            }
        }
        // Flush whatever is still queued: the walk ended (exhausted, shard
        // cap, max-results, or shutdown request) with a partial batch whose
        // targets are already counted, so their probes must still leave.
        if !killed && !batch.is_empty() {
            staged.render(&template, &mut batch);
            match flush_batch(&mut transport, &batch, cfg.max_retries, &metrics) {
                FlushStatus::Killed { targets_in_flight } => {
                    metrics.store_absolute(CounterId::TargetsTotal, targets_in_flight);
                    killed = true;
                }
                FlushStatus::Flushed => {}
            }
            batch.clear();
        }
        if !killed {
            metrics.trace(
                transport.now().saturating_sub(start),
                "send_phase_end",
                metrics.get(CounterId::Sent),
            );
        }
        // Cooldown: drain stragglers for cooldown_secs of virtual time.
        // A scheduled kill can still land here — on the receive path —
        // so poll the transport's death flag between drains.
        if !killed {
            let cooldown_entered = transport.now();
            metrics.trace(cooldown_entered.saturating_sub(start), "cooldown_start", 0);
            let cooldown_end = cooldown_entered + cfg.cooldown_secs * 1_000_000_000;
            let mut last_drain = cooldown_entered;
            // Drain watchdog: a transport whose clock refuses to advance
            // (a wedged NIC thread, a stalled shared-clock peer) leaves
            // `next_rx_at` pending forever and would pin this loop. Track
            // a progress signature — clock, pending-RX time, RX counters —
            // and once it freezes for `watchdog_poll_limit` consecutive
            // polls, record the intervention and abandon the wait. The
            // interrupted flag keeps the final journal resumable, so a
            // supervisor can migrate the stalled attempt.
            let mut signature = (0u64, None, 0u64);
            let mut frozen_polls = 0u64;
            loop {
                if transport.killed() {
                    killed = true;
                    break;
                }
                let pending = transport.next_rx_at();
                let rx_seen = metrics.get(CounterId::ResponsesValidated)
                    + metrics.get(CounterId::ResponsesDiscarded)
                    + metrics.get(CounterId::ResponsesCorrupted)
                    + metrics.get(CounterId::DuplicatesSuppressed);
                let sig = (transport.now(), pending, rx_seen);
                if sig == signature {
                    frozen_polls += 1;
                    if frozen_polls >= watchdog_poll_limit {
                        metrics.add(CounterId::WatchdogStalls, 1);
                        metrics.trace(
                            transport.now().saturating_sub(start),
                            "watchdog_stall",
                            frozen_polls,
                        );
                        logger.warn(format_args!(
                            "drain watchdog: no progress across {frozen_polls} polls; \
                             abandoning cooldown wait"
                        ));
                        stalled = true;
                        interrupted = true;
                        break;
                    }
                } else {
                    signature = sig;
                    frozen_polls = 0;
                }
                match pending {
                    Some(t) if t <= cooldown_end => {
                        transport.advance_to(t);
                        drain_rx(
                            &mut transport,
                            &gen,
                            &builder,
                            &mut dedup,
                            &logger,
                            cfg.report_failures,
                            start,
                            &metrics,
                            &mut results,
                        );
                        last_drain = t;
                    }
                    _ => break,
                }
            }
            if !killed && !stalled {
                transport.advance_to(cooldown_end);
                drain_rx(
                    &mut transport,
                    &gen,
                    &builder,
                    &mut dedup,
                    &logger,
                    cfg.report_failures,
                    start,
                    &metrics,
                    &mut results,
                );
                killed = transport.killed();
            }
            if !killed && !stalled {
                let drained = last_drain.saturating_sub(cooldown_entered);
                metrics.record(HistId::CooldownDrain, drained);
                metrics.trace(cooldown_end.saturating_sub(start), "cooldown_end", drained);
            }
        }

        if !killed {
            // Orderly exit: mark it, write the final journal (complete
            // unless a shutdown token interrupted the walk), then emit
            // the closing status sample and log line — so every stream
            // reflects the clean shutdown. A watchdog stall is neither
            // orderly nor journaled: the worker was wedged, its walk
            // positions are untrustworthy (sends may have been swallowed
            // by the stalled transport), so the last periodic journal —
            // written while the clock still advanced — stays the resume
            // point for a supervisor migration.
            if !stalled {
                metrics.add(CounterId::ShutdownClean, 1);
            }
            if let Some(policy) = checkpoint.as_ref().filter(|_| !stalled) {
                let positions: Vec<u64> =
                    iters.iter().map(|it| it.elements_consumed()).collect();
                let rel = transport.now().saturating_sub(start);
                checkpoint_via_metrics(
                    policy,
                    digest,
                    &cfg,
                    gen.permutation(),
                    positions,
                    rel,
                    !interrupted,
                    &metrics,
                    &logger,
                );
            }
            // Final status samples covering the cooldown (so the stream
            // ends at 100% complete — a zero-sent scan reports 100% via
            // the zero-denominator guard, never NaN or a stuck 0%).
            monitor.observe(
                transport.now().saturating_sub(start),
                &metrics,
                metrics.get(CounterId::Sent),
            );
            let c = metrics.counters();
            metrics.trace(
                transport.now().saturating_sub(start),
                "scan_complete",
                c.unique_successes,
            );
            logger.info(format_args!(
                "scan {}: {} sent, {} validated, {} unique successes, {:.4}% hitrate",
                if interrupted { "interrupted (clean shutdown)" } else { "complete" },
                c.sent,
                c.responses_validated,
                c.unique_successes,
                if c.targets_total == 0 {
                    0.0
                } else {
                    100.0 * c.unique_successes as f64 / c.targets_total as f64
                }
            ));
        } else {
            metrics.trace(transport.now().saturating_sub(start), "killed", 0);
        }
        // A killed process writes nothing more: no final checkpoint, no
        // closing status sample, no completion log line. The summary
        // below is what a post-mortem harness recovers, with
        // `shutdown_clean` still 0.

        let duration_ns = transport.now() - start;
        let counters = metrics.counters();
        let snapshot = metrics.snapshot();

        let (group_prime, generator, offset) = gen.permutation();
        let mut metadata = ScanMetadata {
            version: env!("CARGO_PKG_VERSION").to_string(),
            config: ConfigEcho::from_config(&cfg),
            permutation: PermutationEcho {
                group_prime,
                generator,
                offset,
            },
            counters,
            duration_ns,
            histograms: BTreeMap::new(),
            trace: TraceSnapshot::default(),
            inflight_overflow: 0,
        };
        metadata.attach_metrics(snapshot.clone());
        ScanSummary {
            sent: counters.sent,
            targets_total: counters.targets_total,
            responses_validated: counters.responses_validated,
            responses_discarded: counters.responses_discarded,
            duplicates_suppressed: counters.duplicates_suppressed,
            unique_successes: counters.unique_successes,
            unique_failures: counters.unique_failures,
            send_retries: counters.send_retries,
            sendto_failures: counters.sendto_failures,
            responses_corrupted: counters.responses_corrupted,
            checkpoints_written: counters.checkpoints_written,
            resume_count: counters.resume_count,
            watchdog_stalls: counters.watchdog_stalls,
            shutdown_clean: counters.shutdown_clean,
            killed,
            duration_ns,
            results,
            status: monitor.samples().to_vec(),
            metadata,
            metrics: snapshot,
        }
    }
}

/// Shard-spec gate ahead of the digest check. The config digest covers
/// the shard spec, so a journal migrated onto the wrong worker slice
/// would otherwise surface as an opaque digest mismatch; this
/// distinguishes "same scan, wrong slice" (everything agrees once the
/// journal's spec is substituted into the offered config) from a truly
/// foreign config, which falls through to the digest check.
pub(crate) fn check_shard_spec(
    journal: &CheckpointState,
    cfg: &ScanConfig,
) -> Result<(), ResumeError> {
    let config = (cfg.shard, cfg.num_shards.max(1), cfg.subshards.max(1));
    let recorded = (journal.shard, journal.num_shards, journal.num_subshards);
    if recorded == config {
        return Ok(());
    }
    let mut as_journal = cfg.clone();
    as_journal.shard = journal.shard;
    as_journal.num_shards = journal.num_shards;
    as_journal.subshards = journal.num_subshards;
    if config_digest(&as_journal) == journal.config_digest {
        return Err(ResumeError::ShardSpec { journal: recorded, config });
    }
    Ok(())
}

/// Snapshots the walk into a checkpoint journal. A write failure is
/// logged and otherwise ignored: a failed checkpoint must never take
/// down a live scan. `counters` must already include the write being
/// made (`checkpoints_written` pre-incremented by the caller, who
/// commits that increment to its own books only on success). Returns
/// the serialized journal size in bytes when the write landed.
#[allow(clippy::too_many_arguments)]
pub(crate) fn write_checkpoint(
    policy: &CheckpointPolicy,
    digest: u64,
    cfg: &ScanConfig,
    permutation: (u64, u64, u64),
    positions: Vec<u64>,
    virtual_time_ns: u64,
    complete: bool,
    counters: Counters,
    logger: &Logger,
) -> Option<u64> {
    // `permutation` is the plan's `(prime, generator, offset)` triple;
    // in v6 mode the prime slot carries the walk-plan fingerprint and
    // generator/offset are zero (see `ScanPlan::permutation`).
    let (group_prime, generator, offset) = permutation;
    let state = CheckpointState {
        config_digest: digest,
        seed: cfg.seed,
        group_prime,
        generator,
        offset,
        shard: cfg.shard,
        num_shards: cfg.num_shards.max(1),
        num_subshards: cfg.subshards.max(1),
        positions,
        dedup_high_water: counters.unique_successes + counters.unique_failures,
        virtual_time_ns,
        complete,
        counters,
    };
    let bytes = state.to_bytes().len() as u64;
    match state.write_atomic(&policy.path) {
        Ok(()) => Some(bytes),
        Err(e) => {
            logger.log(
                Level::Warn,
                format_args!("checkpoint write failed (scan continues): {e}"),
            );
            None
        }
    }
}

/// The engine-side checkpoint wrapper: snapshots the registry's counters
/// (with the pending write included), writes the journal, and on success
/// commits the write to the registry — counter, size histogram, and
/// trace event. The journal size stands in for write latency because a
/// wall-clock duration would not replay deterministically.
#[allow(clippy::too_many_arguments)]
pub(crate) fn checkpoint_via_metrics(
    policy: &CheckpointPolicy,
    digest: u64,
    cfg: &ScanConfig,
    permutation: (u64, u64, u64),
    positions: Vec<u64>,
    virtual_time_ns: u64,
    complete: bool,
    metrics: &ScanMetrics,
    logger: &Logger,
) {
    let mut snapshot = metrics.counters();
    snapshot.checkpoints_written += 1;
    if let Some(bytes) = write_checkpoint(
        policy,
        digest,
        cfg,
        permutation,
        positions,
        virtual_time_ns,
        complete,
        snapshot,
        logger,
    ) {
        metrics.add(CounterId::CheckpointsWritten, 1);
        metrics.record(HistId::CheckpointWrite, bytes);
        metrics.trace(virtual_time_ns, "checkpoint_written", bytes);
    }
}

/// What became of one batch flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlushStatus {
    /// Every frame either left the NIC or exhausted its retries.
    Flushed,
    /// The process is dead (scheduled crash) — stop everything, now.
    Killed {
        /// `targets_total` rolled back to count only the targets up to
        /// and including the frame on which the kill landed.
        targets_in_flight: u64,
    },
}

/// Flushes a frame batch through [`Transport::send_batch`], retrying each
/// transiently refused frame (EAGAIN) up to `max_retries` times with
/// exponential virtual-time backoff (50 µs, then doubling — ZMap's sendto
/// retry shape) before re-entering the batched path at the next frame.
/// Exhausted probes count as `sendto_failures` and are never re-queued: a
/// single-pass scanner treats them like any other lost probe. A
/// [`SendError::Killed`] is never retried: the process is gone and no
/// counter moves for the dead frame.
fn flush_batch<T: Transport>(
    transport: &mut T,
    batch: &FrameBatch,
    max_retries: u32,
    metrics: &ScanMetrics,
) -> FlushStatus {
    let mut idx = 0usize;
    // Retry backoff accumulated by this flush alone: the recorded flush
    // latency is the batch's paced span plus this — a batch-local value
    // that replays identically, unlike a read of a shared clock.
    let mut backoff_total = 0u64;
    while idx < batch.len() {
        let (accepted, err) = transport.send_batch(batch, idx);
        metrics.add(CounterId::Sent, accepted as u64);
        idx += accepted;
        match err {
            None => break,
            Some(SendError::Killed) => {
                return FlushStatus::Killed {
                    targets_in_flight: batch.tag(idx),
                };
            }
            Some(_) => {
                // Retry the refused frame alone; the rest of the batch
                // re-enters the batched path once it goes through.
                let (_, frame) = batch.frame(idx);
                let mut attempt = 0u32;
                loop {
                    if attempt == max_retries {
                        metrics.add(CounterId::SendtoFailures, 1);
                        idx += 1;
                        break;
                    }
                    metrics.add(CounterId::SendRetries, 1);
                    let backoff = 50_000u64 << attempt.min(10);
                    backoff_total += backoff;
                    let t = transport.now() + backoff;
                    transport.advance_to(t);
                    attempt += 1;
                    match transport.send_frame(frame) {
                        Ok(()) => {
                            metrics.add(CounterId::Sent, 1);
                            idx += 1;
                            break;
                        }
                        Err(SendError::Killed) => {
                            return FlushStatus::Killed {
                                targets_in_flight: batch.tag(idx),
                            };
                        }
                        Err(_) => {}
                    }
                }
            }
        }
    }
    metrics.record(HistId::BatchFlush, batch.span_ns() + backoff_total);
    FlushStatus::Flushed
}

/// Receive-path processing shared by the send loop and cooldown.
#[allow(clippy::too_many_arguments)]
fn drain_rx<T: Transport>(
    transport: &mut T,
    plan: &ScanPlan,
    builder: &AnyProbeBuilder,
    dedup: &mut DedupState,
    logger: &Logger,
    report_failures: bool,
    start: u64,
    metrics: &ScanMetrics,
    results: &mut Vec<ScanResult>,
) {
    for (ts, frame) in transport.recv_frames() {
        match builder.parse_response(&frame) {
            Ok(Some(resp)) => {
                metrics.add(CounterId::ResponsesValidated, 1);
                // Map the response into the plan's dedup index space. A
                // failure (v6 responder off its prefix's host pattern,
                // unknown port) degrades exactly this response — counted
                // and dropped — never the run.
                let key = match plan.probe_key(resp.ip, resp.port) {
                    Ok(key) => key,
                    Err(e) => {
                        metrics.add(CounterId::ResponsesDiscarded, 1);
                        logger.log(
                            Level::Debug,
                            format_args!("response outside the target space: {e}"),
                        );
                        continue;
                    }
                };
                // RTT from the probe's scheduled send to this arrival;
                // the tracker releases on first take, so duplicates and
                // blowback contribute no sample.
                metrics.record_rtt(0, key, ts);
                if !dedup.observe(resp.ip, key) {
                    metrics.add(CounterId::DuplicatesSuppressed, 1);
                    continue;
                }
                let classification = crate::plan::classify_kind(&resp.kind);
                let success = resp.kind.is_success();
                if success {
                    metrics.add(CounterId::UniqueSuccesses, 1);
                } else {
                    metrics.add(CounterId::UniqueFailures, 1);
                }
                if success || report_failures {
                    results.push(ScanResult {
                        ts_ns: ts.saturating_sub(start),
                        saddr: resp.ip,
                        sport: resp.port,
                        classification,
                        ttl: resp.ttl,
                        success,
                    });
                }
            }
            Ok(None) => {
                metrics.add(CounterId::ResponsesDiscarded, 1);
            }
            Err(zmap_wire::WireError::BadChecksum) => {
                metrics.add(CounterId::ResponsesCorrupted, 1);
                logger.log(Level::Debug, format_args!("checksum mismatch: frame dropped"));
            }
            Err(e) => {
                metrics.add(CounterId::ResponsesDiscarded, 1);
                logger.log(Level::Debug, format_args!("malformed frame: {e}"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProbeKind;
    use crate::output::Classification;
    use crate::transport::SimNet;
    use std::net::Ipv4Addr;
    use zmap_netsim::loss::LossModel;
    use zmap_netsim::{ServiceModel, WorldConfig};

    fn dense_net(ports: &[u16]) -> SimNet {
        SimNet::new(WorldConfig {
            model: ServiceModel::dense(ports),
            loss: LossModel::NONE,
            ..WorldConfig::default()
        })
    }

    fn base_cfg(net_ports: &[u16]) -> ScanConfig {
        let mut cfg = ScanConfig::new(Ipv4Addr::new(192, 0, 2, 9));
        cfg.allowlist_prefix(Ipv4Addr::new(10, 10, 10, 0), 24);
        cfg.apply_default_blocklist = false; // 10/8 is in the default list
        cfg.ports = net_ports.to_vec();
        cfg.rate_pps = 1_000_000;
        cfg.cooldown_secs = 2;
        cfg
    }

    #[test]
    fn dense_scan_finds_everything() {
        let net = dense_net(&[80]);
        let cfg = base_cfg(&[80]);
        let s = Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 9)))
            .unwrap()
            .run();
        assert_eq!(s.sent, 256);
        assert_eq!(s.unique_successes, 256);
        assert_eq!(s.duplicates_suppressed, 0);
        assert_eq!(s.responses_discarded, 0);
        assert!((s.hitrate() - 1.0).abs() < 1e-9);
        assert_eq!(s.results.len(), 256);
        // Every result is a distinct IP in the scanned /24.
        let mut ips: Vec<_> = s.results.iter().map(|r| r.saddr).collect();
        ips.sort();
        ips.dedup();
        assert_eq!(ips.len(), 256);
        assert!(ips.iter().all(|ip| match ip {
            IpAddr::V4(v4) => v4.octets()[..3] == [10, 10, 10],
            IpAddr::V6(_) => false,
        }));
    }

    #[test]
    fn multiport_scan_counts_targets_not_hosts() {
        let net = dense_net(&[80, 443]);
        let cfg = base_cfg(&[80, 443]);
        let s = Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 9)))
            .unwrap()
            .run();
        assert_eq!(s.sent, 512);
        assert_eq!(s.unique_successes, 512);
        // Results carry both ports.
        assert!(s.results.iter().any(|r| r.sport == 80));
        assert!(s.results.iter().any(|r| r.sport == 443));
    }

    #[test]
    fn closed_ports_are_failures_not_successes() {
        let net = dense_net(&[80]); // only 80 open
        let mut cfg = base_cfg(&[81]);
        cfg.report_failures = true;
        let s = Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 9)))
            .unwrap()
            .run();
        assert_eq!(s.unique_successes, 0);
        assert_eq!(s.unique_failures, 256, "dense world RSTs on closed");
        assert_eq!(s.results.len(), 256);
        assert!(s.results.iter().all(|r| r.classification == Classification::Rst));
    }

    #[test]
    fn failures_hidden_by_default() {
        let net = dense_net(&[80]);
        let cfg = base_cfg(&[81]);
        let s = Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 9)))
            .unwrap()
            .run();
        assert!(s.results.is_empty());
        assert_eq!(s.unique_failures, 256);
    }

    #[test]
    fn max_targets_caps_probes() {
        let net = dense_net(&[80]);
        let mut cfg = base_cfg(&[80]);
        cfg.max_targets = 10;
        let s = Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 9)))
            .unwrap()
            .run();
        assert!(s.sent <= 11, "sent {}", s.sent);
    }

    #[test]
    fn max_results_stops_early() {
        let net = dense_net(&[80]);
        let mut cfg = base_cfg(&[80]);
        cfg.max_results = 5;
        // Slow rate so responses arrive while still sending, and a small
        // batch so the cap is checked often enough to stop mid-/24.
        cfg.rate_pps = 1_000;
        cfg.batch = 8;
        let s = Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 9)))
            .unwrap()
            .run();
        assert!(s.unique_successes >= 5);
        assert!(s.sent < 256, "must stop before the whole /24: {}", s.sent);
    }

    #[test]
    fn full_bitmap_dedup_rejects_multi_port_scans() {
        let net = dense_net(&[80, 443]);
        let mut cfg = base_cfg(&[80, 443]);
        cfg.dedup = DedupMethod::FullBitmap;
        let err = Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 9)))
            .err()
            .expect("bitmap cannot key (ip, port) pairs");
        assert!(matches!(err, BuildError::Config(_)), "{err}");
        assert!(err.to_string().contains("full-bitmap"), "{err}");
    }

    #[test]
    fn full_bitmap_dedup_works_single_port() {
        let net = dense_net(&[80]);
        let mut cfg = base_cfg(&[80]);
        cfg.dedup = DedupMethod::FullBitmap;
        let s = Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 9)))
            .unwrap()
            .run();
        assert_eq!(s.unique_successes, 256);
    }

    #[test]
    fn oversized_udp_payload_rejected_at_setup() {
        let net = dense_net(&[53]);
        let mut cfg = base_cfg(&[53]);
        cfg.probe = ProbeKind::Udp(vec![0u8; 70_000]);
        let err = Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 9)))
            .err()
            .expect("payload cannot fit one packet");
        assert!(matches!(err, BuildError::Config(_)), "{err}");
    }

    #[test]
    fn batch_size_does_not_change_results() {
        let run = |batch: usize| {
            let net = dense_net(&[80]);
            let mut cfg = base_cfg(&[80]);
            cfg.batch = batch;
            Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 9)))
                .unwrap()
                .run()
        };
        let one = run(1);
        let dflt = run(64);
        let odd = run(7); // /24 is not a multiple: final partial batch
        assert_eq!(one.results, dflt.results, "batching is invisible in output");
        assert_eq!(one.results, odd.results);
        assert_eq!(one.sent, 256);
        assert_eq!(dflt.sent, 256);
        assert_eq!(odd.sent, 256);
    }

    #[test]
    fn icmp_echo_scan() {
        let net = dense_net(&[80]);
        let mut cfg = base_cfg(&[80]);
        cfg.probe = ProbeKind::IcmpEcho;
        let s = Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 9)))
            .unwrap()
            .run();
        assert_eq!(s.sent, 256, "one echo per host regardless of ports");
        assert_eq!(s.unique_successes, 256);
        assert!(s
            .results
            .iter()
            .all(|r| r.classification == Classification::EchoReply && r.sport == 0));
    }

    #[test]
    fn udp_scan() {
        let net = dense_net(&[53]);
        let mut cfg = base_cfg(&[53]);
        cfg.probe = ProbeKind::Udp(b"probe".to_vec());
        let s = Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 9)))
            .unwrap()
            .run();
        assert_eq!(s.unique_successes, 256);
        assert!(s.results.iter().all(|r| r.classification == Classification::UdpData));
    }

    #[test]
    fn blowback_is_deduplicated() {
        let mut model = ServiceModel::dense(&[80]);
        model.blowback_fraction = 1.0;
        model.blowback_max = 50;
        let net = SimNet::new(WorldConfig {
            model,
            loss: LossModel::NONE,
            ..WorldConfig::default()
        });
        let mut cfg = base_cfg(&[80]);
        cfg.rate_pps = 100_000;
        cfg.cooldown_secs = 400; // long enough for the duplicate tail
        let s = Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 9)))
            .unwrap()
            .run();
        assert_eq!(s.unique_successes, 256, "dups must not inflate successes");
        assert!(
            s.duplicates_suppressed > 1000,
            "blowback should produce heavy duplication: {}",
            s.duplicates_suppressed
        );
        assert_eq!(s.results.len(), 256);
    }

    #[test]
    fn without_dedup_duplicates_pollute_output() {
        let mut model = ServiceModel::dense(&[80]);
        model.blowback_fraction = 1.0;
        model.blowback_max = 50;
        let net = SimNet::new(WorldConfig {
            model,
            loss: LossModel::NONE,
            ..WorldConfig::default()
        });
        let mut cfg = base_cfg(&[80]);
        cfg.rate_pps = 100_000;
        cfg.cooldown_secs = 400;
        cfg.dedup = DedupMethod::None;
        let s = Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 9)))
            .unwrap()
            .run();
        assert!(
            s.unique_successes > 1000,
            "no dedup: every duplicate counts ({})",
            s.unique_successes
        );
    }

    #[test]
    fn rate_controls_virtual_duration() {
        let net = dense_net(&[80]);
        let mut cfg = base_cfg(&[80]);
        cfg.rate_pps = 256; // exactly 1 second of sending for a /24
        cfg.cooldown_secs = 1;
        let s = Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 9)))
            .unwrap()
            .run();
        // ~1 s sending + 1 s cooldown.
        assert!(s.duration_ns >= 1_900_000_000, "{}", s.duration_ns);
        assert!(s.duration_ns < 3_000_000_000, "{}", s.duration_ns);
        assert!(!s.status.is_empty(), "status stream populated");
    }

    #[test]
    fn sharded_scans_partition_results() {
        let mut all = std::collections::HashSet::new();
        let mut total_sent = 0;
        for shard in 0..3u32 {
            let net = dense_net(&[80]);
            let mut cfg = base_cfg(&[80]);
            cfg.shard = shard;
            cfg.num_shards = 3;
            cfg.subshards = 2;
            let s = Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 9)))
                .unwrap()
                .run();
            total_sent += s.sent;
            for r in &s.results {
                assert!(all.insert((r.saddr, r.sport)), "{} duplicated", r.saddr);
            }
        }
        assert_eq!(total_sent, 256);
        assert_eq!(all.len(), 256);
    }

    #[test]
    fn metadata_captures_permutation() {
        let net = dense_net(&[80]);
        let cfg = base_cfg(&[80]);
        let s = Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 9)))
            .unwrap()
            .run();
        let json = s.metadata.to_json();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["counters"]["sent"], 256);
        assert!(v["permutation"]["generator"].as_u64().unwrap() > 1);
        assert_eq!(v["config"]["source_ip"], "192.0.2.9");
    }

    #[test]
    fn same_seed_same_results_different_seed_different_order() {
        let run = |seed| {
            let net = dense_net(&[80]);
            let mut cfg = base_cfg(&[80]);
            cfg.seed = seed;
            Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 9)))
                .unwrap()
                .run()
        };
        let a = run(1);
        let b = run(1);
        let c = run(2);
        let order = |s: &ScanSummary| s.results.iter().map(|r| r.saddr).collect::<Vec<_>>();
        assert_eq!(order(&a), order(&b), "determinism");
        assert_ne!(order(&a), order(&c), "seed changes order");
        assert_eq!(a.unique_successes, c.unique_successes, "same coverage");
    }

    fn temp_journal(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("zmap-scanner-ckpt");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn pre_requested_shutdown_is_clean_and_sends_nothing() {
        let net = dense_net(&[80]);
        let cfg = base_cfg(&[80]);
        let token = ShutdownToken::new();
        token.request();
        let s = Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 9)))
            .unwrap()
            .run_with(RunOptions {
                shutdown: Some(token),
                ..Default::default()
            });
        assert_eq!(s.sent, 0, "no probe leaves after a shutdown request");
        assert_eq!(s.shutdown_clean, 1, "interrupt is still an orderly exit");
        assert!(!s.killed);
        // All four streams remain well-formed: metadata serializes and
        // the status stream has its closing sample.
        let v: serde_json::Value = serde_json::from_str(&s.metadata.to_json()).unwrap();
        assert_eq!(v["counters"]["shutdown_clean"], 1);
        assert!(!s.status.is_empty());
    }

    #[test]
    fn checkpointing_does_not_perturb_the_walk() {
        let net = dense_net(&[80]);
        let cfg = base_cfg(&[80]);
        let path = temp_journal("plain-equivalence.ckpt");
        let s = Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 9)))
            .unwrap()
            .run_with(RunOptions {
                checkpoint: Some(CheckpointPolicy::new(&path)),
                ..Default::default()
            });
        let net2 = dense_net(&[80]);
        let p = Scanner::new(base_cfg(&[80]), net2.transport(Ipv4Addr::new(192, 0, 2, 9)))
            .unwrap()
            .run();
        let order = |s: &ScanSummary| s.results.iter().map(|r| r.saddr).collect::<Vec<_>>();
        assert_eq!(order(&s), order(&p), "checkpointing must not perturb the walk");
    }

    #[test]
    fn checkpoint_journal_is_written_and_marks_completion() {
        let path = temp_journal("complete.ckpt");
        let net = dense_net(&[80]);
        let cfg = base_cfg(&[80]);
        let s = Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 9)))
            .unwrap()
            .run_with(RunOptions {
                checkpoint: Some(CheckpointPolicy::new(&path)),
                ..Default::default()
            });
        assert!(s.checkpoints_written >= 2, "initial + final at minimum");
        let j = CheckpointState::load(&path).unwrap();
        assert!(j.complete, "walk exhausted => journal marked complete");
        assert_eq!(j.counters.sent, s.sent);
        assert_eq!(j.counters.shutdown_clean, 1);
        assert_eq!(j.counters.checkpoints_written, s.checkpoints_written);
    }

    #[test]
    fn killed_scan_reports_unclean_shutdown() {
        use zmap_netsim::FaultPlan;
        let net = SimNet::new(WorldConfig {
            model: ServiceModel::dense(&[80]),
            loss: LossModel::NONE,
            faults: FaultPlan::builder().kill_at(50).build(),
            ..WorldConfig::default()
        });
        let s = Scanner::new(base_cfg(&[80]), net.transport(Ipv4Addr::new(192, 0, 2, 9)))
            .unwrap()
            .run();
        assert!(s.killed);
        assert_eq!(s.shutdown_clean, 0);
        assert!(s.sent < 256, "died mid-walk: {}", s.sent);
    }

    #[test]
    fn kill_then_resume_covers_the_whole_space() {
        let path = temp_journal("kill-resume.ckpt");
        let mut cfg = base_cfg(&[80]);
        cfg.rate_pps = 1_000; // slow enough that the grace rewind is small
        use zmap_netsim::FaultPlan;
        let net = SimNet::new(WorldConfig {
            model: ServiceModel::dense(&[80]),
            loss: LossModel::NONE,
            faults: FaultPlan::builder().kill_at(200).build(),
            ..WorldConfig::default()
        });
        let policy = CheckpointPolicy::new(&path).with_interval_ns(10_000_000);
        let first = Scanner::new(cfg.clone(), net.transport(Ipv4Addr::new(192, 0, 2, 9)))
            .unwrap()
            .run_with(RunOptions {
                checkpoint: Some(policy.clone()),
                ..Default::default()
            });
        assert!(first.killed);

        let journal = CheckpointState::load(&path).unwrap();
        assert!(!journal.complete);
        let net2 = dense_net(&[80]);
        let second = Scanner::resume(cfg, net2.transport(Ipv4Addr::new(192, 0, 2, 9)), &journal)
            .unwrap()
            .run_with(RunOptions {
                checkpoint: Some(policy),
                ..Default::default()
            });
        assert!(!second.killed);
        assert_eq!(second.resume_count, 1);
        assert_eq!(second.shutdown_clean, 1);

        let mut union: std::collections::HashSet<_> = first
            .results
            .iter()
            .map(|r| (r.saddr, r.sport))
            .collect();
        union.extend(second.results.iter().map(|r| (r.saddr, r.sport)));
        assert_eq!(union.len(), 256, "kill/resume must lose nothing");
        // Cumulative counters: the resumed metadata carries both attempts.
        assert!(second.metadata.counters.sent >= first.sent);
        let j2 = CheckpointState::load(&temp_journal("kill-resume.ckpt")).unwrap();
        assert!(j2.complete);
        assert_eq!(j2.counters.resume_count, 1);
    }

    #[test]
    fn resume_refuses_foreign_config() {
        let path = temp_journal("foreign.ckpt");
        let net = dense_net(&[80]);
        let s = Scanner::new(base_cfg(&[80]), net.transport(Ipv4Addr::new(192, 0, 2, 9)))
            .unwrap()
            .run_with(RunOptions {
                checkpoint: Some(CheckpointPolicy::new(&path)),
                ..Default::default()
            });
        assert_eq!(s.shutdown_clean, 1);
        let journal = CheckpointState::load(&path).unwrap();
        let mut other = base_cfg(&[80]);
        other.seed = 999; // different permutation => different scan
        let net2 = dense_net(&[80]);
        let err = Scanner::resume(other, net2.transport(Ipv4Addr::new(192, 0, 2, 9)), &journal);
        assert!(matches!(
            err,
            Err(ResumeError::Journal(JournalError::ConfigMismatch { .. }))
        ));
    }

    /// Migrating a journal onto the wrong shard of the *same* scan is a
    /// distinct, precisely-worded refusal — not the opaque digest
    /// mismatch a foreign config gets — so a supervisor can tell a bad
    /// migration from a corrupted or unrelated journal.
    #[test]
    fn resume_names_both_specs_on_a_shard_mismatch() {
        let path = temp_journal("shard-mismatch.ckpt");
        let mut cfg = base_cfg(&[80]);
        cfg.shard = 1;
        cfg.num_shards = 4;
        let net = dense_net(&[80]);
        let s = Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 9)))
            .unwrap()
            .run_with(RunOptions {
                checkpoint: Some(CheckpointPolicy::new(&path)),
                ..Default::default()
            });
        assert_eq!(s.shutdown_clean, 1);
        let journal = CheckpointState::load(&path).unwrap();

        // Same scan, wrong slice: everything matches but the shard index.
        let mut wrong_slice = base_cfg(&[80]);
        wrong_slice.shard = 2;
        wrong_slice.num_shards = 4;
        let net2 = dense_net(&[80]);
        let err = Scanner::resume(
            wrong_slice,
            net2.transport(Ipv4Addr::new(192, 0, 2, 9)),
            &journal,
        );
        match err {
            Err(ResumeError::ShardSpec { journal: j, config: c }) => {
                assert_eq!(j, (1, 4, 1));
                assert_eq!(c, (2, 4, 1));
                let msg = ResumeError::ShardSpec { journal: j, config: c }.to_string();
                assert!(msg.contains("shard 1/4"), "{msg}");
                assert!(msg.contains("shard 2/4"), "{msg}");
            }
            Err(other) => panic!("expected ShardSpec, got {other}"),
            Ok(_) => panic!("expected ShardSpec, journal was accepted"),
        }

        // A config that differs beyond the slice stays a digest mismatch:
        // the distinct error must not hide a genuinely foreign journal.
        let mut foreign = base_cfg(&[80]);
        foreign.shard = 2;
        foreign.num_shards = 4;
        foreign.seed = 999;
        let net3 = dense_net(&[80]);
        let err = Scanner::resume(
            foreign,
            net3.transport(Ipv4Addr::new(192, 0, 2, 9)),
            &journal,
        );
        assert!(matches!(
            err,
            Err(ResumeError::Journal(JournalError::ConfigMismatch { .. }))
        ));
    }

    #[test]
    fn logger_receives_scan_lifecycle() {
        let net = dense_net(&[80]);
        let cfg = base_cfg(&[80]);
        let log = Logger::memory(Level::Debug);
        let s = Scanner::with_logger(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 9)), log.clone())
            .unwrap()
            .run();
        assert_eq!(s.sent, 256);
        let lines = log.lines();
        assert!(lines.iter().any(|(_, l)| l.contains("scan configured")));
        assert!(lines.iter().any(|(_, l)| l.contains("scan complete")));
    }
}
