//! The scan engine: target walk → paced probes → validated, deduplicated,
//! classified results.

use crate::config::{DedupMethod, ProbeKind, ScanConfig};
use crate::log::{Level, Logger};
use crate::metadata::{ConfigEcho, Counters, PermutationEcho, ScanMetadata};
use crate::monitor::{Monitor, StatusUpdate};
use crate::output::ScanResult;
use crate::probe_mod;
use crate::ratecontrol::RateController;
use crate::transport::Transport;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zmap_dedup::{target_key, PagedBitmap, SlidingWindow};
use zmap_targets::generator::BuildError;
use zmap_targets::{TargetGenerator, Target};
use zmap_wire::probe::ProbeBuilder;

/// Outcome of a completed scan.
#[derive(Debug)]
pub struct ScanSummary {
    /// Probes sent.
    pub sent: u64,
    /// Targets in this shard.
    pub targets_total: u64,
    /// Responses that validated (cookie matched).
    pub responses_validated: u64,
    /// Frames that parsed but were not ours / failed validation.
    pub responses_discarded: u64,
    /// Duplicate responses suppressed by dedup.
    pub duplicates_suppressed: u64,
    /// Unique successful targets (open/answering).
    pub unique_successes: u64,
    /// Unique failed targets (RST/unreachable).
    pub unique_failures: u64,
    /// Send attempts retried after transient transport failures.
    pub send_retries: u64,
    /// Probes abandoned after exhausting retries.
    pub sendto_failures: u64,
    /// Responses rejected by checksum validation.
    pub responses_corrupted: u64,
    /// Virtual scan duration (ns), including cooldown.
    pub duration_ns: u64,
    /// The success records (plus failures when `report_failures`).
    pub results: Vec<ScanResult>,
    /// Per-second status samples.
    pub status: Vec<StatusUpdate>,
    /// Machine-readable metadata (stream #4).
    pub metadata: ScanMetadata,
}

impl ScanSummary {
    /// Fraction of targets that answered successfully.
    pub fn hitrate(&self) -> f64 {
        if self.targets_total == 0 {
            0.0
        } else {
            self.unique_successes as f64 / self.targets_total as f64
        }
    }
}

enum DedupState {
    None,
    Bitmap(Box<PagedBitmap>),
    Window(SlidingWindow),
}

impl DedupState {
    fn observe(&mut self, key: u64) -> bool {
        match self {
            DedupState::None => true,
            DedupState::Bitmap(b) => zmap_dedup::Deduplicator::observe(&mut **b, key),
            DedupState::Window(w) => w.check_and_insert(key),
        }
    }
}

/// The scanner engine. Generic over [`Transport`].
pub struct Scanner<T: Transport> {
    cfg: ScanConfig,
    transport: T,
    builder: ProbeBuilder,
    gen: TargetGenerator,
    dedup: DedupState,
    logger: Logger,
    rng: StdRng,
}

impl<T: Transport> Scanner<T> {
    /// Validates the configuration and prepares the permutation.
    pub fn new(cfg: ScanConfig, transport: T) -> Result<Self, BuildError> {
        Self::with_logger(cfg, transport, Logger::null())
    }

    /// Like [`new`](Self::new) with an explicit logger (stream #2).
    pub fn with_logger(
        cfg: ScanConfig,
        transport: T,
        logger: Logger,
    ) -> Result<Self, BuildError> {
        let ports: Vec<u16> = match cfg.probe {
            // The ICMP module has no port dimension; a single pseudo-port
            // keeps the (IP, port) target machinery uniform.
            ProbeKind::IcmpEcho => vec![0],
            _ => cfg.ports.clone(),
        };
        let gen = TargetGenerator::builder()
            .constraint(cfg.effective_constraint())
            .ports(&ports)
            .seed(cfg.seed)
            .shards(cfg.num_shards.max(1))
            .subshards(cfg.subshards.max(1))
            .algorithm(cfg.shard_algorithm)
            .build()?;
        let mut builder = ProbeBuilder::new(cfg.source_ip, cfg.seed);
        builder.layout = cfg.option_layout;
        builder.ip_id = cfg.ip_id;
        let dedup = match cfg.dedup {
            DedupMethod::None => DedupState::None,
            DedupMethod::FullBitmap => DedupState::Bitmap(Box::new(PagedBitmap::new())),
            DedupMethod::Window(n) => DedupState::Window(SlidingWindow::new(n)),
        };
        logger.info(format_args!(
            "scan configured: {} targets in shard {}/{}, group p={}, generator={}",
            gen.target_count(),
            cfg.shard,
            cfg.num_shards,
            gen.cycle().group().prime(),
            gen.cycle().generator(),
        ));
        Ok(Scanner {
            rng: StdRng::seed_from_u64(cfg.seed ^ 0x005E_ED1D),
            cfg,
            transport,
            builder,
            gen,
            dedup,
            logger,
        })
    }

    /// The target generator (inspectable before running).
    pub fn generator(&self) -> &TargetGenerator {
        &self.gen
    }

    /// Runs the scan to completion (send phase + cooldown) and returns
    /// the summary. Consumes the scanner.
    pub fn run(self) -> ScanSummary {
        let Scanner {
            cfg,
            mut transport,
            builder,
            gen,
            mut dedup,
            logger,
            mut rng,
        } = self;
        let start = transport.now();
        let mut rc = RateController::new(start, cfg.rate_pps);
        let mut monitor = Monitor::new();
        let mut counters = Counters::default();
        let mut results: Vec<ScanResult> = Vec::new();

        // Shard-local target count (exact only for the whole scan; for a
        // shard we estimate as total/shards for progress display).
        let whole = gen.target_count();
        let shard_targets = if cfg.max_targets > 0 {
            cfg.max_targets
        } else {
            whole / u64::from(cfg.num_shards.max(1))
        };

        // Interleave subshard iterators round-robin: this reproduces the
        // temporal mixing of ZMap's concurrent send threads while staying
        // deterministic.
        let subshards = cfg.subshards.max(1);
        let mut iters: Vec<_> = (0..subshards)
            .map(|t| gen.iter_shard(cfg.shard, t))
            .collect();
        let mut live: Vec<usize> = (0..iters.len()).collect();
        let mut next = 0usize;
        let mut done = false;

        while !done {
            if cfg.max_targets > 0 && counters.targets_total >= cfg.max_targets {
                break;
            }
            // Pick the next target, rotating across subshards.
            let target = loop {
                if live.is_empty() {
                    break None;
                }
                next %= live.len();
                match iters[live[next]].next() {
                    Some(t) => {
                        next += 1;
                        break Some(t);
                    }
                    None => {
                        live.remove(next);
                    }
                }
            };
            let Some(Target { ip, port }) = target else {
                break;
            };
            counters.targets_total += 1;

            for _ in 0..cfg.probes_per_target.max(1) {
                let at = rc.mark_sent();
                transport.advance_to(at);
                let entropy: u16 = rng.gen();
                let frame = probe_mod::build_probe(&cfg.probe, &builder, ip, port, entropy);
                send_with_retries(&mut transport, &frame, cfg.max_retries, &mut counters);
            }

            drain_rx(
                &mut transport,
                &builder,
                &mut dedup,
                &logger,
                cfg.report_failures,
                start,
                &mut counters,
                &mut results,
            );
            monitor.tick(
                transport.now().saturating_sub(start),
                &counters,
                shard_targets * u64::from(cfg.probes_per_target.max(1)),
            );

            if cfg.max_results > 0 && counters.unique_successes >= cfg.max_results {
                logger.info(format_args!(
                    "max-results {} reached; entering cooldown",
                    cfg.max_results
                ));
                done = true;
            }
        }
        // Cooldown: drain stragglers for cooldown_secs of virtual time.
        let cooldown_end = transport.now() + cfg.cooldown_secs * 1_000_000_000;
        loop {
            match transport.next_rx_at() {
                Some(t) if t <= cooldown_end => {
                    transport.advance_to(t);
                    drain_rx(
                        &mut transport,
                        &builder,
                        &mut dedup,
                        &logger,
                        cfg.report_failures,
                        start,
                        &mut counters,
                        &mut results,
                    );
                }
                _ => break,
            }
        }
        transport.advance_to(cooldown_end);
        drain_rx(
            &mut transport,
            &builder,
            &mut dedup,
            &logger,
            cfg.report_failures,
            start,
            &mut counters,
            &mut results,
        );
        // Final status samples covering the cooldown (so the stream ends
        // at 100% complete).
        monitor.tick(
            transport.now().saturating_sub(start),
            &counters,
            counters.sent.max(1),
        );

        let duration_ns = transport.now() - start;
        logger.info(format_args!(
            "scan complete: {} sent, {} validated, {} unique successes, {:.4}% hitrate",
            counters.sent,
            counters.responses_validated,
            counters.unique_successes,
            if counters.targets_total == 0 {
                0.0
            } else {
                100.0 * counters.unique_successes as f64 / counters.targets_total as f64
            }
        ));

        let metadata = ScanMetadata {
            version: env!("CARGO_PKG_VERSION").to_string(),
            config: ConfigEcho::from_config(&cfg),
            permutation: PermutationEcho {
                group_prime: gen.cycle().group().prime(),
                generator: gen.cycle().generator(),
                offset: gen.cycle().offset(),
            },
            counters,
            duration_ns,
        };
        ScanSummary {
            sent: counters.sent,
            targets_total: counters.targets_total,
            responses_validated: counters.responses_validated,
            responses_discarded: counters.responses_discarded,
            duplicates_suppressed: counters.duplicates_suppressed,
            unique_successes: counters.unique_successes,
            unique_failures: counters.unique_failures,
            send_retries: counters.send_retries,
            sendto_failures: counters.sendto_failures,
            responses_corrupted: counters.responses_corrupted,
            duration_ns,
            results,
            status: monitor.samples().to_vec(),
            metadata,
        }
    }

}

/// Sends one frame, retrying transient transport failures (EAGAIN) up to
/// `max_retries` times with exponential virtual-time backoff (50 µs, then
/// doubling — ZMap's sendto retry shape). Exhausted probes count as
/// `sendto_failures` and are never re-queued: a single-pass scanner
/// treats them like any other lost probe.
fn send_with_retries<T: Transport>(
    transport: &mut T,
    frame: &[u8],
    max_retries: u32,
    counters: &mut Counters,
) {
    let mut attempt = 0u32;
    loop {
        match transport.send_frame(frame) {
            Ok(()) => {
                counters.sent += 1;
                return;
            }
            Err(_) if attempt < max_retries => {
                counters.send_retries += 1;
                let backoff = 50_000u64 << attempt.min(10);
                let t = transport.now() + backoff;
                transport.advance_to(t);
                attempt += 1;
            }
            Err(_) => {
                counters.sendto_failures += 1;
                return;
            }
        }
    }
}

/// Receive-path processing shared by the send loop and cooldown.
#[allow(clippy::too_many_arguments)]
fn drain_rx<T: Transport>(
    transport: &mut T,
    builder: &ProbeBuilder,
    dedup: &mut DedupState,
    logger: &Logger,
    report_failures: bool,
    start: u64,
    counters: &mut Counters,
    results: &mut Vec<ScanResult>,
) {
    for (ts, frame) in transport.recv_frames() {
        match builder.parse_response(&frame) {
            Ok(Some(resp)) => {
                counters.responses_validated += 1;
                let key = target_key(u32::from(resp.ip), resp.port);
                if !dedup.observe(key) {
                    counters.duplicates_suppressed += 1;
                    continue;
                }
                let classification = probe_mod::classify(&resp);
                let success = probe_mod::is_success(&resp);
                if success {
                    counters.unique_successes += 1;
                } else {
                    counters.unique_failures += 1;
                }
                if success || report_failures {
                    results.push(ScanResult {
                        ts_ns: ts.saturating_sub(start),
                        saddr: resp.ip,
                        sport: resp.port,
                        classification,
                        ttl: resp.ttl,
                        success,
                    });
                }
            }
            Ok(None) => {
                counters.responses_discarded += 1;
            }
            Err(zmap_wire::WireError::BadChecksum) => {
                counters.responses_corrupted += 1;
                logger.log(Level::Debug, format_args!("checksum mismatch: frame dropped"));
            }
            Err(e) => {
                counters.responses_discarded += 1;
                logger.log(Level::Debug, format_args!("malformed frame: {e}"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output::Classification;
    use crate::transport::SimNet;
    use std::net::Ipv4Addr;
    use zmap_netsim::loss::LossModel;
    use zmap_netsim::{ServiceModel, WorldConfig};

    fn dense_net(ports: &[u16]) -> SimNet {
        SimNet::new(WorldConfig {
            model: ServiceModel::dense(ports),
            loss: LossModel::NONE,
            ..WorldConfig::default()
        })
    }

    fn base_cfg(net_ports: &[u16]) -> ScanConfig {
        let mut cfg = ScanConfig::new(Ipv4Addr::new(192, 0, 2, 9));
        cfg.allowlist_prefix(Ipv4Addr::new(10, 10, 10, 0), 24);
        cfg.apply_default_blocklist = false; // 10/8 is in the default list
        cfg.ports = net_ports.to_vec();
        cfg.rate_pps = 1_000_000;
        cfg.cooldown_secs = 2;
        cfg
    }

    #[test]
    fn dense_scan_finds_everything() {
        let net = dense_net(&[80]);
        let cfg = base_cfg(&[80]);
        let s = Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 9)))
            .unwrap()
            .run();
        assert_eq!(s.sent, 256);
        assert_eq!(s.unique_successes, 256);
        assert_eq!(s.duplicates_suppressed, 0);
        assert_eq!(s.responses_discarded, 0);
        assert!((s.hitrate() - 1.0).abs() < 1e-9);
        assert_eq!(s.results.len(), 256);
        // Every result is a distinct IP in the scanned /24.
        let mut ips: Vec<_> = s.results.iter().map(|r| r.saddr).collect();
        ips.sort();
        ips.dedup();
        assert_eq!(ips.len(), 256);
        assert!(ips.iter().all(|ip| ip.octets()[..3] == [10, 10, 10]));
    }

    #[test]
    fn multiport_scan_counts_targets_not_hosts() {
        let net = dense_net(&[80, 443]);
        let cfg = base_cfg(&[80, 443]);
        let s = Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 9)))
            .unwrap()
            .run();
        assert_eq!(s.sent, 512);
        assert_eq!(s.unique_successes, 512);
        // Results carry both ports.
        assert!(s.results.iter().any(|r| r.sport == 80));
        assert!(s.results.iter().any(|r| r.sport == 443));
    }

    #[test]
    fn closed_ports_are_failures_not_successes() {
        let net = dense_net(&[80]); // only 80 open
        let mut cfg = base_cfg(&[81]);
        cfg.report_failures = true;
        let s = Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 9)))
            .unwrap()
            .run();
        assert_eq!(s.unique_successes, 0);
        assert_eq!(s.unique_failures, 256, "dense world RSTs on closed");
        assert_eq!(s.results.len(), 256);
        assert!(s.results.iter().all(|r| r.classification == Classification::Rst));
    }

    #[test]
    fn failures_hidden_by_default() {
        let net = dense_net(&[80]);
        let cfg = base_cfg(&[81]);
        let s = Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 9)))
            .unwrap()
            .run();
        assert!(s.results.is_empty());
        assert_eq!(s.unique_failures, 256);
    }

    #[test]
    fn max_targets_caps_probes() {
        let net = dense_net(&[80]);
        let mut cfg = base_cfg(&[80]);
        cfg.max_targets = 10;
        let s = Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 9)))
            .unwrap()
            .run();
        assert!(s.sent <= 11, "sent {}", s.sent);
    }

    #[test]
    fn max_results_stops_early() {
        let net = dense_net(&[80]);
        let mut cfg = base_cfg(&[80]);
        cfg.max_results = 5;
        // Slow rate so responses arrive while still sending.
        cfg.rate_pps = 1_000;
        let s = Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 9)))
            .unwrap()
            .run();
        assert!(s.unique_successes >= 5);
        assert!(s.sent < 256, "must stop before the whole /24: {}", s.sent);
    }

    #[test]
    fn icmp_echo_scan() {
        let net = dense_net(&[80]);
        let mut cfg = base_cfg(&[80]);
        cfg.probe = ProbeKind::IcmpEcho;
        let s = Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 9)))
            .unwrap()
            .run();
        assert_eq!(s.sent, 256, "one echo per host regardless of ports");
        assert_eq!(s.unique_successes, 256);
        assert!(s
            .results
            .iter()
            .all(|r| r.classification == Classification::EchoReply && r.sport == 0));
    }

    #[test]
    fn udp_scan() {
        let net = dense_net(&[53]);
        let mut cfg = base_cfg(&[53]);
        cfg.probe = ProbeKind::Udp(b"probe".to_vec());
        let s = Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 9)))
            .unwrap()
            .run();
        assert_eq!(s.unique_successes, 256);
        assert!(s.results.iter().all(|r| r.classification == Classification::UdpData));
    }

    #[test]
    fn blowback_is_deduplicated() {
        let mut model = ServiceModel::dense(&[80]);
        model.blowback_fraction = 1.0;
        model.blowback_max = 50;
        let net = SimNet::new(WorldConfig {
            model,
            loss: LossModel::NONE,
            ..WorldConfig::default()
        });
        let mut cfg = base_cfg(&[80]);
        cfg.rate_pps = 100_000;
        cfg.cooldown_secs = 400; // long enough for the duplicate tail
        let s = Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 9)))
            .unwrap()
            .run();
        assert_eq!(s.unique_successes, 256, "dups must not inflate successes");
        assert!(
            s.duplicates_suppressed > 1000,
            "blowback should produce heavy duplication: {}",
            s.duplicates_suppressed
        );
        assert_eq!(s.results.len(), 256);
    }

    #[test]
    fn without_dedup_duplicates_pollute_output() {
        let mut model = ServiceModel::dense(&[80]);
        model.blowback_fraction = 1.0;
        model.blowback_max = 50;
        let net = SimNet::new(WorldConfig {
            model,
            loss: LossModel::NONE,
            ..WorldConfig::default()
        });
        let mut cfg = base_cfg(&[80]);
        cfg.rate_pps = 100_000;
        cfg.cooldown_secs = 400;
        cfg.dedup = DedupMethod::None;
        let s = Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 9)))
            .unwrap()
            .run();
        assert!(
            s.unique_successes > 1000,
            "no dedup: every duplicate counts ({})",
            s.unique_successes
        );
    }

    #[test]
    fn rate_controls_virtual_duration() {
        let net = dense_net(&[80]);
        let mut cfg = base_cfg(&[80]);
        cfg.rate_pps = 256; // exactly 1 second of sending for a /24
        cfg.cooldown_secs = 1;
        let s = Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 9)))
            .unwrap()
            .run();
        // ~1 s sending + 1 s cooldown.
        assert!(s.duration_ns >= 1_900_000_000, "{}", s.duration_ns);
        assert!(s.duration_ns < 3_000_000_000, "{}", s.duration_ns);
        assert!(!s.status.is_empty(), "status stream populated");
    }

    #[test]
    fn sharded_scans_partition_results() {
        let mut all = std::collections::HashSet::new();
        let mut total_sent = 0;
        for shard in 0..3u32 {
            let net = dense_net(&[80]);
            let mut cfg = base_cfg(&[80]);
            cfg.shard = shard;
            cfg.num_shards = 3;
            cfg.subshards = 2;
            let s = Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 9)))
                .unwrap()
                .run();
            total_sent += s.sent;
            for r in &s.results {
                assert!(all.insert((r.saddr, r.sport)), "{} duplicated", r.saddr);
            }
        }
        assert_eq!(total_sent, 256);
        assert_eq!(all.len(), 256);
    }

    #[test]
    fn metadata_captures_permutation() {
        let net = dense_net(&[80]);
        let cfg = base_cfg(&[80]);
        let s = Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 9)))
            .unwrap()
            .run();
        let json = s.metadata.to_json();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["counters"]["sent"], 256);
        assert!(v["permutation"]["generator"].as_u64().unwrap() > 1);
        assert_eq!(v["config"]["source_ip"], "192.0.2.9");
    }

    #[test]
    fn same_seed_same_results_different_seed_different_order() {
        let run = |seed| {
            let net = dense_net(&[80]);
            let mut cfg = base_cfg(&[80]);
            cfg.seed = seed;
            Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 9)))
                .unwrap()
                .run()
        };
        let a = run(1);
        let b = run(1);
        let c = run(2);
        let order = |s: &ScanSummary| s.results.iter().map(|r| r.saddr).collect::<Vec<_>>();
        assert_eq!(order(&a), order(&b), "determinism");
        assert_ne!(order(&a), order(&c), "seed changes order");
        assert_eq!(a.unique_successes, c.unique_successes, "same coverage");
    }

    #[test]
    fn logger_receives_scan_lifecycle() {
        let net = dense_net(&[80]);
        let cfg = base_cfg(&[80]);
        let log = Logger::memory(Level::Debug);
        let s = Scanner::with_logger(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 9)), log.clone())
            .unwrap()
            .run();
        assert_eq!(s.sent, 256);
        let lines = log.lines();
        assert!(lines.iter().any(|(_, l)| l.contains("scan configured")));
        assert!(lines.iter().any(|(_, l)| l.contains("scan complete")));
    }
}
