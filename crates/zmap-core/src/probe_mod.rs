//! Probe modules: the pluggable probe-construction/classification layer
//! (ZMap's "Scan Modules", §5 "Tools Not Frameworks").

use crate::config::ProbeKind;
use crate::output::Classification;
use std::net::Ipv4Addr;
use zmap_wire::probe::{ProbeBuilder, Response};
use zmap_wire::template::ProbeTemplate;
use zmap_wire::WireError;

/// Builds the probe frame for one target under the configured module.
///
/// UDP payload sizes are validated once at scan setup
/// ([`build_template`] / `Scanner::new`), so per-probe construction
/// cannot fail.
pub fn build_probe(
    kind: &ProbeKind,
    builder: &ProbeBuilder,
    ip: Ipv4Addr,
    port: u16,
    ip_id_entropy: u16,
) -> Vec<u8> {
    match kind {
        ProbeKind::TcpSyn => builder.tcp_syn(ip, port, ip_id_entropy),
        ProbeKind::IcmpEcho => builder.icmp_echo(ip, ip_id_entropy),
        ProbeKind::Udp(payload) => builder
            .udp(ip, port, payload, ip_id_entropy)
            .expect("UDP payload validated at scan setup"),
    }
}

/// Builds the per-scan packet template for the configured module
/// (paper §4.4). Fails only for UDP payloads that cannot fit one packet;
/// the engines surface that at scan-setup time, keeping the TX hot path
/// infallible.
pub fn build_template(
    kind: &ProbeKind,
    builder: &ProbeBuilder,
) -> Result<ProbeTemplate, WireError> {
    match kind {
        ProbeKind::TcpSyn => Ok(ProbeTemplate::tcp_syn(builder)),
        ProbeKind::IcmpEcho => Ok(ProbeTemplate::icmp_echo(builder)),
        ProbeKind::Udp(payload) => ProbeTemplate::udp(builder, payload),
    }
}

/// Staged batch rendering: while the sender reserves batch slots, the
/// targets queue here; just before a flush the frames are rendered in
/// interleaved lane groups — eight wide while they last
/// ([`ProbeTemplate::probe_values_x8`]), then four
/// ([`ProbeTemplate::probe_values_x4`]), then scalar — so the per-probe
/// MAC latency overlaps across lanes. Slot `i` of the batch always
/// corresponds to entry `i` here — both are filled and cleared in
/// lockstep.
pub(crate) struct StagedRender {
    targets: Vec<(Ipv4Addr, u16, u16)>,
}

impl StagedRender {
    pub(crate) fn with_capacity(n: usize) -> Self {
        StagedRender {
            targets: Vec::with_capacity(n),
        }
    }

    /// Queues one target; its frame renders at the next [`Self::render`].
    pub(crate) fn push(&mut self, ip: Ipv4Addr, port: u16, ip_id_entropy: u16) {
        self.targets.push((ip, port, ip_id_entropy));
    }

    /// Renders every staged frame into the batch and clears the queue.
    pub(crate) fn render(&mut self, template: &ProbeTemplate, batch: &mut crate::transport::FrameBatch) {
        debug_assert_eq!(self.targets.len(), batch.len(), "slots and stages move in lockstep");
        let n = self.targets.len();
        let mut i = 0;
        while i + 8 <= n {
            let lane = |k: usize| self.targets[i + k];
            let vs = template.probe_values_x8(
                [
                    lane(0).0,
                    lane(1).0,
                    lane(2).0,
                    lane(3).0,
                    lane(4).0,
                    lane(5).0,
                    lane(6).0,
                    lane(7).0,
                ],
                [
                    lane(0).1,
                    lane(1).1,
                    lane(2).1,
                    lane(3).1,
                    lane(4).1,
                    lane(5).1,
                    lane(6).1,
                    lane(7).1,
                ],
            );
            for (k, v) in vs.into_iter().enumerate() {
                let (ip, port, entropy) = self.targets[i + k];
                template.render_with(v, ip, port, entropy, batch.frame_mut(i + k));
            }
            i += 8;
        }
        while i + 4 <= n {
            let lane = |k: usize| self.targets[i + k];
            let vs = template.probe_values_x4(
                [lane(0).0, lane(1).0, lane(2).0, lane(3).0],
                [lane(0).1, lane(1).1, lane(2).1, lane(3).1],
            );
            for (k, v) in vs.into_iter().enumerate() {
                let (ip, port, entropy) = self.targets[i + k];
                template.render_with(v, ip, port, entropy, batch.frame_mut(i + k));
            }
            i += 4;
        }
        while i < n {
            let (ip, port, entropy) = self.targets[i];
            template.render_into(ip, port, entropy, batch.frame_mut(i));
            i += 1;
        }
        self.targets.clear();
    }
}

/// Maps a validated response to the output classification. The kind →
/// classification table itself lives in [`crate::plan::classify_kind`],
/// shared with the IPv6 path.
pub fn classify(resp: &Response) -> Classification {
    crate::plan::classify_kind(&resp.kind)
}

/// Whether a response from this module counts toward `max_results`
/// (successes only, like ZMap).
pub fn is_success(resp: &Response) -> bool {
    resp.kind.is_success()
}

#[cfg(test)]
mod tests {
    use super::*;
    use zmap_wire::icmp::UnreachCode;
    use zmap_wire::probe::ResponseKind;
    use zmap_wire::tcp::TcpFlags;

    #[test]
    fn probe_frames_differ_by_module() {
        let b = ProbeBuilder::new(Ipv4Addr::new(1, 1, 1, 1), 3);
        let ip = Ipv4Addr::new(8, 8, 8, 8);
        let syn = build_probe(&ProbeKind::TcpSyn, &b, ip, 80, 0);
        let echo = build_probe(&ProbeKind::IcmpEcho, &b, ip, 80, 0);
        let udp = build_probe(&ProbeKind::Udp(b"x".to_vec()), &b, ip, 53, 0);
        assert_ne!(syn, echo);
        assert_ne!(syn, udp);
        // Protocol bytes: TCP=6, ICMP=1, UDP=17 at IP offset 9.
        assert_eq!(syn[14 + 9], 6);
        assert_eq!(echo[14 + 9], 1);
        assert_eq!(udp[14 + 9], 17);
    }

    #[test]
    fn classification_mapping() {
        let mk = |kind| Response {
            ip: Ipv4Addr::new(1, 2, 3, 4),
            port: 80,
            kind,
            ttl: 60,
            seq: 0,
        };
        assert_eq!(classify(&mk(ResponseKind::SynAck)), Classification::SynAck);
        assert_eq!(classify(&mk(ResponseKind::Rst)), Classification::Rst);
        assert_eq!(classify(&mk(ResponseKind::EchoReply)), Classification::EchoReply);
        assert_eq!(
            classify(&mk(ResponseKind::Unreachable {
                code: UnreachCode::Port,
                via: Ipv4Addr::new(9, 9, 9, 9)
            })),
            Classification::Unreach
        );
        assert_eq!(classify(&mk(ResponseKind::UdpData(10))), Classification::UdpData);
        assert_eq!(
            classify(&mk(ResponseKind::OtherTcp(TcpFlags::ACK))),
            Classification::Other
        );
        assert!(is_success(&mk(ResponseKind::SynAck)));
        assert!(!is_success(&mk(ResponseKind::Rst)));
    }
}
