//! Probe modules: the pluggable probe-construction/classification layer
//! (ZMap's "Scan Modules", §5 "Tools Not Frameworks").

use crate::config::ProbeKind;
use crate::output::Classification;
use std::net::Ipv4Addr;
use zmap_wire::probe::{ProbeBuilder, Response, ResponseKind};

/// Builds the probe frame for one target under the configured module.
pub fn build_probe(
    kind: &ProbeKind,
    builder: &ProbeBuilder,
    ip: Ipv4Addr,
    port: u16,
    ip_id_entropy: u16,
) -> Vec<u8> {
    match kind {
        ProbeKind::TcpSyn => builder.tcp_syn(ip, port, ip_id_entropy),
        ProbeKind::IcmpEcho => builder.icmp_echo(ip, ip_id_entropy),
        ProbeKind::Udp(payload) => builder.udp(ip, port, payload, ip_id_entropy),
    }
}

/// Maps a validated response to the output classification.
pub fn classify(resp: &Response) -> Classification {
    match resp.kind {
        ResponseKind::SynAck => Classification::SynAck,
        ResponseKind::Rst => Classification::Rst,
        ResponseKind::EchoReply => Classification::EchoReply,
        ResponseKind::Unreachable { .. } => Classification::Unreach,
        ResponseKind::UdpData(_) => Classification::UdpData,
        ResponseKind::OtherTcp(_) => Classification::Other,
    }
}

/// Whether a response from this module counts toward `max_results`
/// (successes only, like ZMap).
pub fn is_success(resp: &Response) -> bool {
    resp.kind.is_success()
}

#[cfg(test)]
mod tests {
    use super::*;
    use zmap_wire::icmp::UnreachCode;
    use zmap_wire::tcp::TcpFlags;

    #[test]
    fn probe_frames_differ_by_module() {
        let b = ProbeBuilder::new(Ipv4Addr::new(1, 1, 1, 1), 3);
        let ip = Ipv4Addr::new(8, 8, 8, 8);
        let syn = build_probe(&ProbeKind::TcpSyn, &b, ip, 80, 0);
        let echo = build_probe(&ProbeKind::IcmpEcho, &b, ip, 80, 0);
        let udp = build_probe(&ProbeKind::Udp(b"x".to_vec()), &b, ip, 53, 0);
        assert_ne!(syn, echo);
        assert_ne!(syn, udp);
        // Protocol bytes: TCP=6, ICMP=1, UDP=17 at IP offset 9.
        assert_eq!(syn[14 + 9], 6);
        assert_eq!(echo[14 + 9], 1);
        assert_eq!(udp[14 + 9], 17);
    }

    #[test]
    fn classification_mapping() {
        let mk = |kind| Response {
            ip: Ipv4Addr::new(1, 2, 3, 4),
            port: 80,
            kind,
            ttl: 60,
            seq: 0,
        };
        assert_eq!(classify(&mk(ResponseKind::SynAck)), Classification::SynAck);
        assert_eq!(classify(&mk(ResponseKind::Rst)), Classification::Rst);
        assert_eq!(classify(&mk(ResponseKind::EchoReply)), Classification::EchoReply);
        assert_eq!(
            classify(&mk(ResponseKind::Unreachable {
                code: UnreachCode::Port,
                via: Ipv4Addr::new(9, 9, 9, 9)
            })),
            Classification::Unreach
        );
        assert_eq!(classify(&mk(ResponseKind::UdpData(10))), Classification::UdpData);
        assert_eq!(
            classify(&mk(ResponseKind::OtherTcp(TcpFlags::ACK))),
            Classification::Other
        );
        assert!(is_success(&mk(ResponseKind::SynAck)));
        assert!(!is_success(&mk(ResponseKind::Rst)));
    }
}
