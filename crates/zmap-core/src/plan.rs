//! The address-family plan: one dispatch layer that lets both engines
//! (sequential and threaded) drive an IPv4 cyclic-group walk or an
//! XMap-style IPv6 per-prefix walk through the same code path.
//!
//! Everything family-specific funnels through four small enums:
//! [`ScanPlan`] (target space + sharded iteration + dedup keying),
//! [`AnyProbeBuilder`] (per-scan key material + response validation),
//! [`AnyTemplate`] (the rendered per-scan packet template), and
//! [`AnyStaged`] (the interleaved batch-render queue). The engines match
//! on none of these in their hot loops beyond what lives here.

use crate::config::{DedupMethod, ProbeKind, ScanConfig};
use crate::transport::FrameBatch;
use std::net::{IpAddr, Ipv6Addr};
use zmap_dedup::target_key;
use zmap_targets::generator::{BuildError, TargetIter};
use zmap_targets::{
    parse_prefix_list, DedupError, ShardSpec, Target, Target6, TargetGenerator, V6DedupSpace,
    V6TargetIter, V6TargetSpace,
};
use zmap_wire::probe::{ProbeBuilder, ResponseKind};
use zmap_wire::template::ProbeTemplate;
use zmap_wire::{ProbeBuilderV6, ProbeTemplateV6, WireError};

/// The effective port list: the ICMP modules have no port dimension, so a
/// single pseudo-port keeps the (IP, port) target machinery uniform.
pub fn effective_ports(cfg: &ScanConfig) -> Vec<u16> {
    match cfg.probe {
        ProbeKind::IcmpEcho => vec![0],
        _ => cfg.ports.clone(),
    }
}

/// The IPv6 half of a plan: the per-prefix walk plan plus the dense
/// dedup index space derived from it.
pub struct V6Plan {
    /// The prefix-tree walk (one smallest-fitting cyclic group per
    /// prefix, interleaved by the stride scheduler).
    pub space: V6TargetSpace,
    /// Maps response `(addr, port)` back into the compact per-prefix
    /// index space; failures degrade one response, never the run.
    pub dedup: V6DedupSpace,
    num_shards: u32,
    num_subshards: u32,
}

/// A validated target space for one address family.
pub enum ScanPlan {
    /// IPv4: the classic single cyclic-group permutation over the
    /// constraint tree.
    V4(TargetGenerator),
    /// IPv6: per-prefix cyclic walks over the prefix list.
    V6(Box<V6Plan>),
}

impl ScanPlan {
    /// Builds and validates the plan for `cfg`. `cycle_parts` rebuilds a
    /// journaled v4 permutation verbatim instead of re-deriving it from
    /// the seed; the v6 walk plan and the stealth re-keyed walk are pure
    /// functions of the config and seed, so their resume paths ignore it.
    pub fn build(
        cfg: &ScanConfig,
        cycle_parts: Option<(u64, u64)>,
    ) -> Result<ScanPlan, BuildError> {
        let ports = effective_ports(cfg);
        match &cfg.ipv6 {
            None => {
                let mut gen_builder = TargetGenerator::builder()
                    .constraint(cfg.effective_constraint())
                    .ports(&ports)
                    .seed(cfg.seed)
                    .shards(cfg.num_shards.max(1))
                    .subshards(cfg.subshards.max(1))
                    .algorithm(cfg.shard_algorithm)
                    .rekey_blocks(cfg.rekey_blocks);
                // A re-keyed walk is re-derived from the seed on resume
                // (the journal's fingerprint gate catches drift); recorded
                // single-permutation parts only apply to the classic walk.
                if cfg.rekey_blocks == 0 {
                    if let Some((generator, offset)) = cycle_parts {
                        gen_builder = gen_builder.cycle_parts(generator, offset);
                    }
                }
                Ok(ScanPlan::V4(gen_builder.build()?))
            }
            Some(v6) => {
                if cfg.rekey_blocks > 0 {
                    return Err(BuildError::Config(
                        "stealth re-keying applies to the IPv4 cyclic walk; the v6 \
                         per-prefix plan already re-keys per prefix"
                            .into(),
                    ));
                }
                if cfg.dedup == DedupMethod::FullBitmap {
                    return Err(BuildError::Config(
                        "full-bitmap dedup indexes bare IPv4 addresses; IPv6 scans \
                         use window dedup over the per-prefix index space"
                            .into(),
                    ));
                }
                let specs = parse_prefix_list(&v6.prefix_list)
                    .map_err(|e| BuildError::Config(format!("invalid prefix list: {e}")))?;
                let space = V6TargetSpace::new(specs, &ports, cfg.seed, cfg.shard_algorithm)
                    .map_err(|e| BuildError::Config(format!("cannot plan v6 walk: {e}")))?;
                let num_shards = cfg.num_shards.max(1);
                let num_subshards = cfg.subshards.max(1);
                // Validate the shard spec once here so the engines'
                // `iter_shard` calls (which panic on bad specs) cannot
                // fail later.
                space
                    .iter_spec(ShardSpec {
                        shard: cfg.shard,
                        num_shards,
                        subshard: 0,
                        num_subshards,
                    })
                    .map_err(|e| BuildError::Config(format!("invalid shard spec: {e}")))?;
                let dedup = space.dedup_space();
                Ok(ScanPlan::V6(Box::new(V6Plan {
                    space,
                    dedup,
                    num_shards,
                    num_subshards,
                })))
            }
        }
    }

    /// The permutation triple the checkpoint journal records. For v4 this
    /// is the literal `(group prime, generator, offset)`; for v6 the
    /// walk plan is a pure function of (prefix list, ports, seed), so its
    /// [`V6TargetSpace::fingerprint`] rides in the prime slot (with
    /// generator/offset zero) and the resume gate compares fingerprints.
    /// A stealth re-keyed v4 walk is likewise seed-pure, so its
    /// [`zmap_targets::RekeyedWalk::fingerprint`] rides the same way.
    pub fn permutation(&self) -> (u64, u64, u64) {
        match self {
            ScanPlan::V4(gen) => match gen.walk_fingerprint() {
                Some(fp) => (fp, 0, 0),
                None => (
                    gen.cycle().group().prime(),
                    gen.cycle().generator(),
                    gen.cycle().offset(),
                ),
            },
            ScanPlan::V6(p) => (p.space.fingerprint(), 0, 0),
        }
    }

    /// Total targets in the whole scan (all shards). Saturates at
    /// `u64::MAX` for v6 spaces beyond 2^64 — progress display only; the
    /// walk itself is exact.
    pub fn target_count(&self) -> u64 {
        match self {
            ScanPlan::V4(gen) => gen.target_count(),
            ScanPlan::V6(p) => u64::try_from(p.space.target_count()).unwrap_or(u64::MAX),
        }
    }

    /// One subshard's iterator. The plan's shard spec was validated at
    /// build, so this cannot fail for in-range `shard`/`subshard`.
    pub fn iter_shard(&self, shard: u32, subshard: u32) -> PlanIter<'_> {
        match self {
            ScanPlan::V4(gen) => PlanIter::V4(gen.iter_shard(shard, subshard)),
            ScanPlan::V6(p) => {
                PlanIter::V6(p.space.iter_shard(shard, p.num_shards, subshard, p.num_subshards))
            }
        }
    }

    /// The dense dedup/RTT key for a target or response address. On the
    /// TX path this is infallible (the walk only yields in-space
    /// targets); on the RX path an `Err` names the response that failed
    /// to invert — the caller discards that one response and keeps
    /// scanning.
    pub fn probe_key(&self, ip: IpAddr, port: u16) -> Result<u64, DedupError> {
        match (self, ip) {
            (ScanPlan::V4(_), IpAddr::V4(v4)) => Ok(target_key(u32::from(v4), port)),
            (ScanPlan::V6(p), IpAddr::V6(v6)) => p.dedup.key_for(v6, port),
            // A cross-family response cannot belong to this scan; treat
            // it like an address outside every prefix.
            (ScanPlan::V6(_), IpAddr::V4(v4)) => {
                Err(DedupError::NoMatchingPrefix(v4.to_ipv6_mapped()))
            }
            (ScanPlan::V4(_), IpAddr::V6(v6)) => Err(DedupError::NoMatchingPrefix(v6)),
        }
    }
}

/// One subshard's target stream, family-erased to `(IpAddr, port)`.
pub enum PlanIter<'a> {
    V4(TargetIter<'a>),
    V6(V6TargetIter<'a>),
}

impl PlanIter<'_> {
    /// Raw group elements drawn so far (the checkpoint position unit).
    pub fn elements_consumed(&self) -> u64 {
        match self {
            PlanIter::V4(it) => it.elements_consumed(),
            PlanIter::V6(it) => it.elements_consumed(),
        }
    }

    /// Skips `k` raw elements (checkpoint fast-forward); returns how many
    /// were actually available.
    pub fn fast_forward_elements(&mut self, k: u64) -> u64 {
        match self {
            PlanIter::V4(it) => it.fast_forward_elements(k),
            PlanIter::V6(it) => it.fast_forward_elements(k),
        }
    }
}

impl Iterator for PlanIter<'_> {
    type Item = (IpAddr, u16);

    fn next(&mut self) -> Option<(IpAddr, u16)> {
        match self {
            PlanIter::V4(it) => it.next().map(|Target { ip, port }| (IpAddr::V4(ip), port)),
            PlanIter::V6(it) => it.next().map(|Target6 { ip, port }| (IpAddr::V6(ip), port)),
        }
    }
}

/// A validated response, family-erased. `kind` reuses the v4
/// [`ResponseKind`] enum — the v6 parser never produces `Unreachable`.
pub struct AnyResponse {
    /// The probed host.
    pub ip: IpAddr,
    /// The probed port (0 for echo probes).
    pub port: u16,
    /// What came back.
    pub kind: ResponseKind,
    /// TTL (v4) or hop limit (v6) observed on the response.
    pub ttl: u8,
}

/// Per-scan probe key material and response validation for one family.
pub enum AnyProbeBuilder {
    V4(ProbeBuilder),
    V6(ProbeBuilderV6),
}

impl AnyProbeBuilder {
    /// Builds the family's probe builder from the config.
    pub fn build(cfg: &ScanConfig) -> AnyProbeBuilder {
        match &cfg.ipv6 {
            None => {
                let mut builder = ProbeBuilder::new(cfg.source_ip, cfg.seed);
                builder.layout = cfg.option_layout;
                builder.ip_id = cfg.ip_id;
                AnyProbeBuilder::V4(builder)
            }
            Some(v6) => AnyProbeBuilder::V6(ProbeBuilderV6::new(v6.source_ip, cfg.seed)),
        }
    }

    /// Parses and validates a received frame. `Ok(None)` means a
    /// well-formed frame that is not a response to this scan.
    pub fn parse_response(&self, frame: &[u8]) -> Result<Option<AnyResponse>, WireError> {
        match self {
            AnyProbeBuilder::V4(b) => Ok(b.parse_response(frame)?.map(|r| AnyResponse {
                ip: IpAddr::V4(r.ip),
                port: r.port,
                kind: r.kind,
                ttl: r.ttl,
            })),
            AnyProbeBuilder::V6(b) => Ok(b.parse_response(frame)?.map(|r| AnyResponse {
                ip: IpAddr::V6(r.ip),
                port: r.port,
                kind: r.kind,
                ttl: r.ttl,
            })),
        }
    }
}

/// The per-scan packet template for one family (paper §4.4): the frame is
/// laid out once; the hot loop only patches addresses and checksums.
pub enum AnyTemplate {
    V4(ProbeTemplate),
    V6(ProbeTemplateV6),
}

/// Builds the template for the configured module, validating the one
/// per-probe construction failure (oversized UDP payload) at setup time.
pub fn build_any_template(
    kind: &ProbeKind,
    builder: &AnyProbeBuilder,
) -> Result<AnyTemplate, WireError> {
    match builder {
        AnyProbeBuilder::V4(b) => crate::probe_mod::build_template(kind, b).map(AnyTemplate::V4),
        AnyProbeBuilder::V6(b) => match kind {
            ProbeKind::TcpSyn => Ok(AnyTemplate::V6(ProbeTemplateV6::tcp_syn(b))),
            ProbeKind::IcmpEcho => Ok(AnyTemplate::V6(ProbeTemplateV6::icmp_echo(b))),
            ProbeKind::Udp(payload) => ProbeTemplateV6::udp(b, payload).map(AnyTemplate::V6),
        },
    }
}

/// Staged batch rendering, family-erased. The v4 arm carries per-probe IP
/// ID entropy and renders x8 → x4 → scalar; the v6 arm has no IP ID (no
/// fragment header is emitted) and renders x8 → scalar. Slot `i` of the
/// frame batch always corresponds to entry `i` here.
pub(crate) enum AnyStaged {
    V4(crate::probe_mod::StagedRender),
    V6(Vec<(Ipv6Addr, u16)>),
}

impl AnyStaged {
    /// An empty queue matching the plan's family.
    pub(crate) fn for_plan(plan: &ScanPlan, capacity: usize) -> AnyStaged {
        match plan {
            ScanPlan::V4(_) => {
                AnyStaged::V4(crate::probe_mod::StagedRender::with_capacity(capacity))
            }
            ScanPlan::V6(_) => AnyStaged::V6(Vec::with_capacity(capacity)),
        }
    }

    /// Queues one target; its frame renders at the next [`Self::render`].
    /// `ip_id_entropy` feeds the v4 IP ID and is ignored for v6. The
    /// target's family must match the queue's (guaranteed when targets
    /// come from the same plan's iterator).
    pub(crate) fn push(&mut self, ip: IpAddr, port: u16, ip_id_entropy: u16) {
        match (self, ip) {
            (AnyStaged::V4(staged), IpAddr::V4(v4)) => staged.push(v4, port, ip_id_entropy),
            (AnyStaged::V6(staged), IpAddr::V6(v6)) => staged.push((v6, port)),
            _ => unreachable!("staged queue fed a target from the other address family"),
        }
    }

    /// Renders every staged frame into the batch and clears the queue.
    /// The template's family must match the queue's (both derive from
    /// the same config).
    pub(crate) fn render(&mut self, template: &AnyTemplate, batch: &mut FrameBatch) {
        match (self, template) {
            (AnyStaged::V4(staged), AnyTemplate::V4(t)) => staged.render(t, batch),
            (AnyStaged::V6(staged), AnyTemplate::V6(t)) => {
                debug_assert_eq!(
                    staged.len(),
                    batch.len(),
                    "slots and stages move in lockstep"
                );
                let n = staged.len();
                let mut i = 0;
                while i + 8 <= n {
                    let lane = |k: usize| staged[i + k];
                    let vs = t.probe_values_x8(
                        [
                            lane(0).0,
                            lane(1).0,
                            lane(2).0,
                            lane(3).0,
                            lane(4).0,
                            lane(5).0,
                            lane(6).0,
                            lane(7).0,
                        ],
                        [
                            lane(0).1,
                            lane(1).1,
                            lane(2).1,
                            lane(3).1,
                            lane(4).1,
                            lane(5).1,
                            lane(6).1,
                            lane(7).1,
                        ],
                    );
                    for (k, v) in vs.into_iter().enumerate() {
                        let (ip, port) = staged[i + k];
                        t.render_with(v, ip, port, batch.frame_mut(i + k));
                    }
                    i += 8;
                }
                while i < n {
                    let (ip, port) = staged[i];
                    t.render_into(ip, port, batch.frame_mut(i));
                    i += 1;
                }
                staged.clear();
            }
            _ => unreachable!("staged queue rendered with the other family's template"),
        }
    }
}

/// Maps a validated response kind to the output classification (shared by
/// both families; the v6 parser never produces `Unreachable`).
pub fn classify_kind(kind: &ResponseKind) -> crate::output::Classification {
    use crate::output::Classification;
    match kind {
        ResponseKind::SynAck => Classification::SynAck,
        ResponseKind::Rst => Classification::Rst,
        ResponseKind::EchoReply => Classification::EchoReply,
        ResponseKind::Unreachable { .. } => Classification::Unreach,
        ResponseKind::UdpData(_) => Classification::UdpData,
        ResponseKind::OtherTcp(_) => Classification::Other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{Ipv4Addr, Ipv6Addr};

    const PREFIXES: &str = "2001:db8:a::/48 pattern=low bits=6 density=1.0\n\
                            2001:db8:b::/48 pattern=eui64 bits=4 density=1.0\n";

    fn v6_cfg() -> ScanConfig {
        let mut cfg = ScanConfig::new(Ipv4Addr::new(198, 51, 100, 7));
        cfg.ipv6 = Some(crate::config::Ipv6Config {
            source_ip: "2001:db8:ffff::1".parse().unwrap(),
            prefix_list: PREFIXES.to_string(),
        });
        cfg.ports = vec![443];
        cfg.seed = 11;
        cfg
    }

    #[test]
    fn v4_plan_matches_generator_directly() {
        let cfg = ScanConfig::new(Ipv4Addr::new(198, 51, 100, 7));
        let plan = ScanPlan::build(&cfg, None).unwrap();
        let ScanPlan::V4(ref gen) = plan else {
            panic!("v4 config must build a v4 plan")
        };
        assert_eq!(plan.target_count(), gen.target_count());
        assert_eq!(plan.permutation().0, gen.cycle().group().prime());
        let got: Vec<_> = plan.iter_shard(0, 0).take(16).collect();
        let want: Vec<_> = gen
            .iter_shard(0, 0)
            .take(16)
            .map(|t| (IpAddr::V4(t.ip), t.port))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn stealth_permutation_is_fingerprint_with_zero_parts() {
        let mut cfg = ScanConfig::new(Ipv4Addr::new(198, 51, 100, 7));
        cfg.rekey_blocks = 8;
        let plan = ScanPlan::build(&cfg, None).unwrap();
        let (fp, g, o) = plan.permutation();
        assert_ne!(fp, 0);
        assert_eq!((g, o), (0, 0));
        // Seed shifts the fingerprint: a foreign journal cannot slip
        // through the resume gate.
        let mut other = ScanConfig::new(Ipv4Addr::new(198, 51, 100, 7));
        other.rekey_blocks = 8;
        other.seed = 1;
        assert_ne!(ScanPlan::build(&other, None).unwrap().permutation().0, fp);
    }

    #[test]
    fn stealth_resume_ignores_cycle_parts() {
        // A stealth journal records (fingerprint, 0, 0); the resume path
        // feeds those zero parts back through build, which must re-derive
        // the walk from the seed instead of choking on generator 0.
        let mut cfg = ScanConfig::new(Ipv4Addr::new(198, 51, 100, 7));
        cfg.rekey_blocks = 8;
        let fresh = ScanPlan::build(&cfg, None).unwrap();
        let resumed = ScanPlan::build(&cfg, Some((0, 0))).unwrap();
        assert_eq!(resumed.permutation(), fresh.permutation());
        let a: Vec<_> = fresh.iter_shard(0, 0).take(64).collect();
        let b: Vec<_> = resumed.iter_shard(0, 0).take(64).collect();
        assert_eq!(a, b, "resume must re-enter the identical walk");
    }

    #[test]
    fn stealth_rejects_v6_mode() {
        let mut cfg = v6_cfg();
        cfg.rekey_blocks = 4;
        assert!(matches!(
            ScanPlan::build(&cfg, None),
            Err(BuildError::Config(_))
        ));
    }

    #[test]
    fn v6_plan_walks_every_target_once() {
        let plan = ScanPlan::build(&v6_cfg(), None).unwrap();
        assert_eq!(plan.target_count(), 64 + 16);
        let seen: std::collections::HashSet<_> = plan.iter_shard(0, 0).collect();
        assert_eq!(seen.len(), 80, "every (addr, port) exactly once");
        for (ip, port) in &seen {
            assert!(matches!(ip, IpAddr::V6(_)));
            assert_eq!(*port, 443);
        }
    }

    #[test]
    fn v6_permutation_is_fingerprint_with_zero_parts() {
        let plan = ScanPlan::build(&v6_cfg(), None).unwrap();
        let (fp, g, o) = plan.permutation();
        assert_ne!(fp, 0);
        assert_eq!((g, o), (0, 0));
        // Fingerprint shifts with the prefix list: a foreign journal
        // cannot slip through the resume gate.
        let mut other = v6_cfg();
        other.ipv6.as_mut().unwrap().prefix_list =
            "2001:db8:a::/48 pattern=low bits=6 density=1.0\n".into();
        let plan2 = ScanPlan::build(&other, None).unwrap();
        assert_ne!(plan2.permutation().0, fp);
    }

    #[test]
    fn v6_probe_key_round_trips_and_degrades_per_response() {
        let cfg = v6_cfg();
        let plan = ScanPlan::build(&cfg, None).unwrap();
        let mut keys = std::collections::HashSet::new();
        for (ip, port) in plan.iter_shard(0, 0) {
            keys.insert(plan.probe_key(ip, port).expect("walked targets always key"));
        }
        assert_eq!(keys.len(), 80, "keys are dense and collision-free");
        // Off-space responses fail with a typed, per-response error.
        let stray: Ipv6Addr = "2001:db8:dead::1".parse().unwrap();
        assert!(matches!(
            plan.probe_key(IpAddr::V6(stray), 443),
            Err(DedupError::NoMatchingPrefix(_))
        ));
        let inside: Ipv6Addr = "2001:db8:a::1".parse().unwrap();
        assert!(matches!(
            plan.probe_key(IpAddr::V6(inside), 80),
            Err(DedupError::UnknownPort { .. })
        ));
        assert!(plan
            .probe_key(IpAddr::V4(Ipv4Addr::new(1, 2, 3, 4)), 443)
            .is_err());
    }

    #[test]
    fn v6_rejects_full_bitmap_dedup() {
        let mut cfg = v6_cfg();
        cfg.dedup = DedupMethod::FullBitmap;
        assert!(matches!(
            ScanPlan::build(&cfg, None),
            Err(BuildError::Config(_))
        ));
    }

    #[test]
    fn v6_bad_prefix_list_is_a_config_error() {
        let mut cfg = v6_cfg();
        cfg.ipv6.as_mut().unwrap().prefix_list = "not-a-prefix/129\n".into();
        assert!(matches!(
            ScanPlan::build(&cfg, None),
            Err(BuildError::Config(_))
        ));
    }

    #[test]
    fn v6_staged_render_x8_matches_scalar() {
        let cfg = v6_cfg();
        let plan = ScanPlan::build(&cfg, None).unwrap();
        let builder = AnyProbeBuilder::build(&cfg);
        let template = build_any_template(&cfg.probe, &builder).unwrap();
        let targets: Vec<_> = plan.iter_shard(0, 0).take(11).collect();
        let mut batch = FrameBatch::new(targets.len());
        let mut staged = AnyStaged::for_plan(&plan, targets.len());
        for &(ip, port) in &targets {
            batch.reserve(0, 0);
            staged.push(ip, port, 0xABCD);
        }
        staged.render(&template, &mut batch);
        let AnyTemplate::V6(ref t) = template else {
            panic!("v6 config must build a v6 template")
        };
        for (i, &(ip, port)) in targets.iter().enumerate() {
            let IpAddr::V6(v6) = ip else { unreachable!() };
            assert_eq!(batch.frame(i).1, &t.render(v6, port)[..], "frame {i}");
        }
    }
}
