//! A bounded single-producer/single-consumer ring for handing rendered
//! frame batches from generator threads to transport threads — the
//! engine-side analogue of a netmap TX ring (paper §4.2: ZMap's 10GbE
//! push came from decoupling packet *generation* from packet *I/O* and
//! meeting the NIC with preloaded buffers).
//!
//! Shape: monotonically increasing head/tail sequence counters over a
//! fixed slot array. The producer owns `tail`, the consumer owns `head`;
//! each side reads the other's counter with `Acquire` and publishes its
//! own with `Release`, so a popped value always sees the fully written
//! slot. The crate forbids `unsafe`, so slot transfer goes through a
//! per-slot `Mutex<Option<T>>` — never contended in correct SPSC use
//! (the sequence counters keep both sides off the same slot), it costs
//! one uncontended lock per transfer and keeps every interleaving
//! memory-safe by construction.
//!
//! Close semantics: either side may [`close`](SpscRing::close) the ring.
//! A closed ring refuses new pushes immediately (the producer learns the
//! consumer is gone) but still drains queued values (the consumer never
//! loses frames that were already rendered). The TX pipeline closes a
//! pair's rings from whichever side exits first, so a blocked peer always
//! unblocks promptly — no frame is silently dropped, and no thread can
//! deadlock on a dead partner.

use std::sync::atomic::Ordering;
use std::sync::Mutex;

// Test builds swap the sequence counters for zmap-sched shims so the
// model checker (src/model_check.rs) can explore every interleaving of
// the real ring code; release builds use the std atomics unchanged.
#[cfg(not(test))]
use std::sync::atomic::{AtomicBool, AtomicU64};
#[cfg(test)]
use zmap_sched::{ShimAtomicBool as AtomicBool, ShimAtomicU64 as AtomicU64};

/// Bounded SPSC queue. See the module docs for the concurrency contract:
/// one pushing thread, one popping thread, either may close.
pub struct SpscRing<T> {
    slots: Vec<Mutex<Option<T>>>,
    /// Sequence number of the next value to pop (consumer-owned).
    // [atomics] head: Relaxed load by its owner (the consumer — nobody
    // else writes it), Acquire load by the producer so a freed slot is
    // seen empty, Release store to publish the take.
    head: AtomicU64,
    /// Sequence number of the next value to push (producer-owned).
    // [atomics] tail: Relaxed load by its owner (the producer), Acquire
    // load by the consumer so the slot's contents are visible before the
    // counter that announces them, Release store to publish the write.
    tail: AtomicU64,
    // [atomics] closed: Release store (either side), Acquire load — the
    // closer's final pushes must be visible to a consumer that observes
    // the flag and drains.
    closed: AtomicBool,
}

/// Error returned by a push the ring cannot accept, carrying the value
/// back to the caller.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// Every slot is occupied; retry after the consumer drains.
    Full(T),
    /// The ring was closed; the consumer will never drain it.
    Closed(T),
}

impl<T> SpscRing<T> {
    /// A ring with `capacity` slots.
    ///
    /// # Panics
    /// Panics if `capacity` is 0.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        SpscRing {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            closed: AtomicBool::new(false),
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Values currently queued (racy snapshot, exact when quiescent).
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        tail.saturating_sub(head) as usize
    }

    /// True when nothing is queued (racy snapshot, exact when quiescent).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Marks the ring closed: pushes fail from now on, pops drain what
    /// remains and then return `None`. Idempotent, callable by either
    /// side.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }

    /// True once [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Attempts to enqueue without blocking. Fails with the value when
    /// the ring is full or closed.
    pub fn try_push(&self, value: T) -> Result<(), PushError<T>> {
        if self.is_closed() {
            return Err(PushError::Closed(value));
        }
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail - head >= self.slots.len() as u64 {
            return Err(PushError::Full(value));
        }
        let idx = (tail % self.slots.len() as u64) as usize;
        let prev = self.slots[idx]
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .replace(value);
        debug_assert!(prev.is_none(), "producer overwrote an undrained slot");
        self.tail.store(tail + 1, Ordering::Release);
        Ok(())
    }

    /// Enqueues, spinning (with yields) while the ring is full. Fails
    /// with the value only when the ring closes while waiting.
    pub fn push(&self, mut value: T) -> Result<(), T> {
        loop {
            match self.try_push(value) {
                Ok(()) => return Ok(()),
                Err(PushError::Closed(v)) => return Err(v),
                Err(PushError::Full(v)) => {
                    value = v;
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Attempts to dequeue without blocking. `None` means currently
    /// empty — check [`is_closed`](Self::is_closed) to distinguish
    /// "drained forever" from "try again".
    pub fn try_pop(&self) -> Option<T> {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let idx = (head % self.slots.len() as u64) as usize;
        let value = self.slots[idx]
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .take();
        debug_assert!(value.is_some(), "consumer drained an unpublished slot");
        self.head.store(head + 1, Ordering::Release);
        value
    }

    /// Dequeues, spinning (with yields) while the ring is empty. Returns
    /// `None` only when the ring is closed *and* fully drained — queued
    /// values survive a close.
    pub fn pop(&self) -> Option<T> {
        loop {
            if let Some(v) = self.try_pop() {
                return Some(v);
            }
            // Order matters: observe the close flag *before* the final
            // emptiness re-check, else a push-then-close racing this poll
            // could slip a value in after we looked and before we gave up.
            if self.is_closed() {
                return self.try_pop();
            }
            std::thread::yield_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn fills_drains_and_reports_boundaries() {
        let ring = SpscRing::with_capacity(2);
        assert!(ring.is_empty());
        assert_eq!(ring.capacity(), 2);
        ring.try_push(1u32).unwrap();
        ring.try_push(2).unwrap();
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.try_push(3), Err(PushError::Full(3)));
        assert_eq!(ring.try_pop(), Some(1));
        ring.try_push(3).unwrap();
        assert_eq!(ring.try_pop(), Some(2));
        assert_eq!(ring.try_pop(), Some(3));
        assert_eq!(ring.try_pop(), None);
        assert!(ring.is_empty());
    }

    #[test]
    fn wraparound_preserves_fifo_order_across_many_laps() {
        // Capacity 3 over 1000 values: every slot index is reused
        // hundreds of times and the head/tail sequences lap the slot
        // array; order and content must still be exact.
        let ring = SpscRing::with_capacity(3);
        let mut next_out = 0u32;
        for v in 0..1000u32 {
            ring.try_push(v).unwrap();
            if v % 3 == 2 {
                while let Some(got) = ring.try_pop() {
                    assert_eq!(got, next_out);
                    next_out += 1;
                }
            }
        }
        while let Some(got) = ring.try_pop() {
            assert_eq!(got, next_out);
            next_out += 1;
        }
        assert_eq!(next_out, 1000, "no loss, no duplication");
    }

    #[test]
    fn close_refuses_pushes_but_drains_queued_values() {
        let ring = SpscRing::with_capacity(4);
        ring.try_push(10u8).unwrap();
        ring.try_push(11).unwrap();
        ring.close();
        assert_eq!(ring.try_push(12), Err(PushError::Closed(12)));
        assert_eq!(ring.push(13), Err(13));
        // Queued frames were already rendered; a close must not lose them.
        assert_eq!(ring.pop(), Some(10));
        assert_eq!(ring.pop(), Some(11));
        assert_eq!(ring.pop(), None);
    }

    #[test]
    fn blocking_pop_unblocks_on_close() {
        let ring = SpscRing::<u8>::with_capacity(1);
        std::thread::scope(|scope| {
            let consumer = scope.spawn(|| ring.pop());
            ring.close();
            assert_eq!(consumer.join().unwrap(), None);
        });
    }

    #[test]
    fn blocking_push_unblocks_on_close() {
        let ring = SpscRing::with_capacity(1);
        ring.try_push(1u8).unwrap();
        std::thread::scope(|scope| {
            let producer = scope.spawn(|| ring.push(2u8));
            ring.close();
            assert_eq!(producer.join().unwrap(), Err(2));
        });
        assert_eq!(ring.pop(), Some(1), "the queued value still drains");
    }

    #[test]
    fn two_thread_stress_no_loss_duplication_or_reordering() {
        // A full producer/consumer pair across a deliberately tiny ring:
        // heavy wraparound and constant full/empty boundary hits. The
        // consumer must see exactly 0..N in order — any lost, duplicated,
        // or reordered transfer breaks the sequence check.
        const N: u64 = 200_000;
        let ring = SpscRing::with_capacity(4);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for v in 0..N {
                    ring.push(v).expect("consumer lives until drained");
                }
                ring.close();
            });
            let mut expected = 0u64;
            while let Some(v) = ring.pop() {
                assert_eq!(v, expected, "FIFO order violated");
                expected += 1;
            }
            assert_eq!(expected, N, "every pushed value must arrive once");
        });
    }

    #[test]
    fn stress_with_consumer_side_backpressure() {
        // The consumer stalls periodically (simulating a slow NIC), so
        // the producer keeps slamming into the full boundary; the
        // recycle-direction pattern used by the TX pipeline.
        const N: u64 = 50_000;
        let ring = SpscRing::with_capacity(2);
        let popped = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for v in 0..N {
                    ring.push(v).unwrap();
                }
                ring.close();
            });
            let mut expected = 0u64;
            while let Some(v) = ring.pop() {
                assert_eq!(v, expected);
                expected += 1;
                if expected.is_multiple_of(1024) {
                    std::thread::yield_now();
                }
                popped.fetch_add(1, Ordering::Relaxed);
            }
            assert_eq!(expected, N);
        });
        assert_eq!(popped.load(Ordering::Relaxed) as u64, N);
    }

    #[test]
    #[should_panic(expected = "ring capacity must be positive")]
    fn zero_capacity_ring_panics() {
        SpscRing::<u8>::with_capacity(0);
    }
}
