//! Real-time status updates — stream #3: per-second send/receive/drop
//! rates, as ZMap prints while a scan runs.
//!
//! Every field of [`Counters`] is mirrored here under the *same name*:
//! the `counter-wiring` lint in zmap-analyze enforces that a counter
//! added to the metadata document also reaches this live stream and the
//! CLI status line, so a scan operator never learns about a new failure
//! mode only after the scan completes.

use crate::metadata::Counters;
use crate::metrics::ScanMetrics;
use serde::Serialize;

/// One per-second status sample. Counter fields carry the identical
/// names of their [`Counters`] sources (machine-checked).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct StatusUpdate {
    /// Seconds since scan start.
    pub t_secs: u64,
    /// Targets walked so far.
    pub targets_total: u64,
    /// Probes sent so far.
    pub sent: u64,
    /// Send rate over the last interval (pps).
    pub send_rate: f64,
    /// Validated responses so far.
    pub responses_validated: u64,
    /// Frames that parsed but failed validation / were not ours.
    pub responses_discarded: u64,
    /// Duplicates suppressed so far.
    pub duplicates_suppressed: u64,
    /// Unique successes so far.
    pub unique_successes: u64,
    /// Unique failed targets (RST/unreachable) so far.
    pub unique_failures: u64,
    /// Send attempts retried after a transient failure so far.
    pub send_retries: u64,
    /// Probes abandoned after exhausting retries so far.
    pub sendto_failures: u64,
    /// Responses rejected by checksum validation so far.
    pub responses_corrupted: u64,
    /// Poisoned world-lock acquisitions recovered so far.
    pub lock_poison_recoveries: u64,
    /// Checkpoint journals written so far.
    pub checkpoints_written: u64,
    /// Resume attempts recorded for this scan (cumulative).
    pub resume_count: u64,
    /// Watchdog stall interventions so far.
    pub watchdog_stalls: u64,
    /// 1 once the engine has entered the orderly shutdown path.
    pub shutdown_clean: u64,
    /// Jobs admitted by the supervisor (supervisor runs only).
    pub jobs_admitted: u64,
    /// Worker attempts restarted after a death.
    pub worker_restarts: u64,
    /// Jobs parked as degraded by the circuit breaker.
    pub jobs_degraded: u64,
    /// Checkpoint journals migrated onto fresh workers.
    pub migrations: u64,
    /// Percent of targets completed (0–100).
    pub percent_complete: f64,
}

/// Collects per-second samples as the scan advances.
#[derive(Debug, Default)]
pub struct Monitor {
    samples: Vec<StatusUpdate>,
    last_sent: u64,
    next_tick: u64,
}

/// Interval between samples, in ns.
const TICK_NS: u64 = 1_000_000_000;

impl Monitor {
    /// An empty monitor.
    pub fn new() -> Self {
        Monitor::default()
    }

    /// Called by the engine as time advances; emits a sample per elapsed
    /// second boundary from the running counters. `expected_targets` is
    /// the denominator for progress (the shard's estimated probe count).
    pub fn tick(&mut self, now_ns: u64, c: &Counters, expected_targets: u64) {
        while now_ns >= self.next_tick {
            let t_secs = self.next_tick / TICK_NS;
            // Saturating: a resumed scan seeds `sent` from the journal
            // baseline, and a rolled-back counter must never produce a
            // negative-wrapped (then NaN-breeding) rate.
            let send_rate = c.sent.saturating_sub(self.last_sent) as f64;
            self.samples.push(StatusUpdate {
                t_secs,
                targets_total: c.targets_total,
                sent: c.sent,
                send_rate,
                responses_validated: c.responses_validated,
                responses_discarded: c.responses_discarded,
                duplicates_suppressed: c.duplicates_suppressed,
                unique_successes: c.unique_successes,
                unique_failures: c.unique_failures,
                send_retries: c.send_retries,
                sendto_failures: c.sendto_failures,
                responses_corrupted: c.responses_corrupted,
                lock_poison_recoveries: c.lock_poison_recoveries,
                checkpoints_written: c.checkpoints_written,
                resume_count: c.resume_count,
                watchdog_stalls: c.watchdog_stalls,
                shutdown_clean: c.shutdown_clean,
                jobs_admitted: c.jobs_admitted,
                worker_restarts: c.worker_restarts,
                jobs_degraded: c.jobs_degraded,
                migrations: c.migrations,
                percent_complete: percent_complete(c.sent, expected_targets),
            });
            self.last_sent = c.sent;
            self.next_tick += TICK_NS;
        }
    }

    /// Like [`tick`](Self::tick), reading the counters from the metrics
    /// registry — the engines' path, which makes the status stream a
    /// pure consumer of the registry rather than a parallel book.
    pub fn observe(&mut self, now_ns: u64, metrics: &ScanMetrics, expected_targets: u64) {
        self.tick(now_ns, &metrics.counters(), expected_targets);
    }

    /// All samples so far.
    pub fn samples(&self) -> &[StatusUpdate] {
        &self.samples
    }

    /// Renders the latest sample in ZMap's one-line status style. Fault
    /// counters appear only once nonzero, keeping the clean-network line
    /// identical to classic output.
    pub fn status_line(&self) -> Option<String> {
        self.samples.last().map(|s| {
            let mut line = format!(
                "{}s; send: {} ({:.0} pps); recv: {} ({} app success); drops: {} dup",
                s.t_secs,
                s.sent,
                s.send_rate,
                s.responses_validated,
                s.unique_successes,
                s.duplicates_suppressed
            );
            if s.unique_failures > 0 {
                line.push_str(&format!("; failures: {}", s.unique_failures));
            }
            if s.responses_discarded > 0 {
                line.push_str(&format!("; discarded: {}", s.responses_discarded));
            }
            if s.send_retries > 0 || s.sendto_failures > 0 {
                line.push_str(&format!(
                    "; retries: {} ({} failed)",
                    s.send_retries, s.sendto_failures
                ));
            }
            if s.responses_corrupted > 0 {
                line.push_str(&format!("; corrupt: {}", s.responses_corrupted));
            }
            if s.lock_poison_recoveries > 0 {
                line.push_str(&format!("; lock-recovered: {}", s.lock_poison_recoveries));
            }
            if s.checkpoints_written > 0 {
                line.push_str(&format!("; ckpt: {}", s.checkpoints_written));
            }
            if s.resume_count > 0 {
                line.push_str(&format!("; resumed: {}", s.resume_count));
            }
            if s.watchdog_stalls > 0 {
                line.push_str(&format!("; stalls: {}", s.watchdog_stalls));
            }
            if s.jobs_admitted > 0 {
                line.push_str(&format!("; jobs: {}", s.jobs_admitted));
            }
            if s.worker_restarts > 0 {
                line.push_str(&format!("; restarts: {}", s.worker_restarts));
            }
            if s.jobs_degraded > 0 {
                line.push_str(&format!("; degraded: {}", s.jobs_degraded));
            }
            if s.migrations > 0 {
                line.push_str(&format!("; migrations: {}", s.migrations));
            }
            if s.shutdown_clean > 0 {
                line.push_str("; shutdown: clean");
            }
            line
        })
    }
}

/// Progress as a percentage, always a finite value in `[0, 100]`:
/// an unknown/zero denominator reports 100 (the scan cannot be "behind"
/// a target space it never had), and an overshooting numerator — probe
/// retransmits, a `max_targets` cap below the estimate — clamps at 100.
fn percent_complete(sent: u64, expected: u64) -> f64 {
    if expected == 0 {
        100.0
    } else {
        (100.0 * sent as f64 / expected as f64).min(100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(sent: u64, received: u64, successes: u64, duplicates: u64) -> Counters {
        Counters {
            sent,
            responses_validated: received,
            unique_successes: successes,
            duplicates_suppressed: duplicates,
            ..Counters::default()
        }
    }

    #[test]
    fn one_sample_per_second() {
        let mut m = Monitor::new();
        m.tick(0, &counts(0, 0, 0, 0), 1000); // t=0 boundary
        m.tick(500_000_000, &counts(5000, 10, 8, 0), 1000);
        m.tick(1_000_000_000, &counts(10_000, 25, 20, 1), 1000);
        m.tick(3_000_000_000, &counts(30_000, 70, 60, 2), 1000);
        let s = m.samples();
        // Boundaries at t=0,1,2,3.
        assert_eq!(s.len(), 4);
        assert_eq!(s[0].t_secs, 0);
        assert_eq!(s[1].t_secs, 1);
        assert_eq!(s[3].t_secs, 3);
        // Rate over second 1 = sent at that boundary minus before.
        assert_eq!(s[1].send_rate, 10_000.0);
    }

    #[test]
    fn percent_complete_is_always_finite_and_bounded() {
        let mut m = Monitor::new();
        m.tick(0, &counts(250, 0, 0, 0), 1000);
        assert!((m.samples()[0].percent_complete - 25.0).abs() < 1e-9);
        // Zero expected targets (empty shard, zero-sent scan): 100%, not
        // NaN/inf from a zero denominator.
        let mut m = Monitor::new();
        m.tick(0, &counts(0, 0, 0, 0), 0);
        assert_eq!(m.samples()[0].percent_complete, 100.0);
        // Overshoot (sent beyond the shard estimate) clamps at 100.
        let mut m = Monitor::new();
        m.tick(0, &counts(1500, 0, 0, 0), 1000);
        assert_eq!(m.samples()[0].percent_complete, 100.0);
        for s in m.samples() {
            assert!(s.percent_complete.is_finite());
            assert!((0.0..=100.0).contains(&s.percent_complete));
        }
    }

    #[test]
    fn rate_never_goes_negative_on_counter_rollback() {
        let mut m = Monitor::new();
        m.tick(0, &counts(100, 0, 0, 0), 1000);
        // A rolled-back `sent` (smaller than the previous sample) must
        // not wrap into an astronomically large rate.
        m.tick(1_000_000_000, &counts(40, 0, 0, 0), 1000);
        let s = m.samples();
        assert_eq!(s[1].send_rate, 0.0);
        assert!(s.iter().all(|u| u.send_rate.is_finite() && u.send_rate >= 0.0));
    }

    #[test]
    fn observe_reads_the_registry() {
        use crate::metrics::{CounterId, ScanMetrics};
        let metrics = ScanMetrics::new(1, Counters::default());
        metrics.add(CounterId::Sent, 500);
        metrics.add(CounterId::UniqueSuccesses, 123);
        let mut m = Monitor::new();
        m.observe(0, &metrics, 1000);
        assert_eq!(m.samples()[0].sent, 500);
        assert_eq!(m.samples()[0].unique_successes, 123);
        assert!((m.samples()[0].percent_complete - 50.0).abs() < 1e-9);
    }

    #[test]
    fn status_line_renders() {
        let mut m = Monitor::new();
        assert!(m.status_line().is_none());
        m.tick(1_000_000_000, &counts(9000, 100, 90, 3), 10_000);
        let line = m.status_line().unwrap();
        assert!(line.contains("send: 9000"));
        assert!(line.contains("90 app success"));
        assert!(!line.contains("retries"), "clean scan omits fault counters");
        assert!(!line.contains("lock-recovered"), "clean scan omits recoveries");
    }

    #[test]
    fn status_line_shows_fault_counters_when_nonzero() {
        let mut m = Monitor::new();
        let mut c = counts(9000, 100, 90, 3);
        c.send_retries = 17;
        c.sendto_failures = 2;
        c.responses_corrupted = 5;
        c.lock_poison_recoveries = 1;
        m.tick(1_000_000_000, &c, 10_000);
        let line = m.status_line().unwrap();
        assert!(line.contains("retries: 17 (2 failed)"), "{line}");
        assert!(line.contains("corrupt: 5"), "{line}");
        assert!(line.contains("lock-recovered: 1"), "{line}");
    }

    #[test]
    fn samples_carry_fault_counters() {
        let mut m = Monitor::new();
        let mut c = counts(10, 1, 1, 0);
        c.send_retries = 3;
        c.responses_corrupted = 1;
        m.tick(0, &c, 100);
        assert_eq!(m.samples()[0].send_retries, 3);
        assert_eq!(m.samples()[0].responses_corrupted, 1);
        assert_eq!(m.samples()[0].sendto_failures, 0);
        assert_eq!(m.samples()[0].lock_poison_recoveries, 0);
    }

    #[test]
    fn every_counter_field_is_mirrored() {
        // The serialized sample must carry each Counters field by name;
        // the zmap-analyze `counter-wiring` lint enforces the same at
        // token level, this test enforces it at serde level.
        let mut m = Monitor::new();
        m.tick(0, &Counters::default(), 1);
        let json = serde_json::to_string(&m.samples()[0]).unwrap();
        for field in [
            "targets_total",
            "sent",
            "responses_validated",
            "responses_discarded",
            "duplicates_suppressed",
            "unique_successes",
            "unique_failures",
            "send_retries",
            "sendto_failures",
            "responses_corrupted",
            "lock_poison_recoveries",
            "checkpoints_written",
            "resume_count",
            "watchdog_stalls",
            "shutdown_clean",
            "jobs_admitted",
            "worker_restarts",
            "jobs_degraded",
            "migrations",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
    }
}
