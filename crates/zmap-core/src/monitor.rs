//! Real-time status updates — stream #3: per-second send/receive/drop
//! rates, as ZMap prints while a scan runs.

use crate::metadata::Counters;
use serde::Serialize;

/// One per-second status sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct StatusUpdate {
    /// Seconds since scan start.
    pub t_secs: u64,
    /// Probes sent so far.
    pub sent: u64,
    /// Send rate over the last interval (pps).
    pub send_rate: f64,
    /// Validated responses so far.
    pub received: u64,
    /// Unique successes so far.
    pub successes: u64,
    /// Duplicates suppressed so far.
    pub duplicates: u64,
    /// Send attempts retried after a transient failure so far.
    pub retries: u64,
    /// Probes abandoned after exhausting retries so far.
    pub send_failures: u64,
    /// Responses rejected by checksum validation so far.
    pub corrupted: u64,
    /// Percent of targets completed (0–100).
    pub percent_complete: f64,
}

/// Collects per-second samples as the scan advances.
#[derive(Debug, Default)]
pub struct Monitor {
    samples: Vec<StatusUpdate>,
    last_sent: u64,
    next_tick: u64,
}

/// Interval between samples, in ns.
const TICK_NS: u64 = 1_000_000_000;

impl Monitor {
    /// An empty monitor.
    pub fn new() -> Self {
        Monitor::default()
    }

    /// Called by the engine as time advances; emits a sample per elapsed
    /// second boundary from the running counters.
    pub fn tick(&mut self, now_ns: u64, c: &Counters, total_targets: u64) {
        while now_ns >= self.next_tick {
            let t_secs = self.next_tick / TICK_NS;
            let send_rate = (c.sent - self.last_sent) as f64;
            self.samples.push(StatusUpdate {
                t_secs,
                sent: c.sent,
                send_rate,
                received: c.responses_validated,
                successes: c.unique_successes,
                duplicates: c.duplicates_suppressed,
                retries: c.send_retries,
                send_failures: c.sendto_failures,
                corrupted: c.responses_corrupted,
                percent_complete: if total_targets == 0 {
                    100.0
                } else {
                    100.0 * c.sent as f64 / total_targets as f64
                },
            });
            self.last_sent = c.sent;
            self.next_tick += TICK_NS;
        }
    }

    /// All samples so far.
    pub fn samples(&self) -> &[StatusUpdate] {
        &self.samples
    }

    /// Renders the latest sample in ZMap's one-line status style. Fault
    /// counters appear only once nonzero, keeping the clean-network line
    /// identical to classic output.
    pub fn status_line(&self) -> Option<String> {
        self.samples.last().map(|s| {
            let mut line = format!(
                "{}s; send: {} ({:.0} pps); recv: {} ({} app success); drops: {} dup",
                s.t_secs, s.sent, s.send_rate, s.received, s.successes, s.duplicates
            );
            if s.retries > 0 || s.send_failures > 0 {
                line.push_str(&format!(
                    "; retries: {} ({} failed)",
                    s.retries, s.send_failures
                ));
            }
            if s.corrupted > 0 {
                line.push_str(&format!("; corrupt: {}", s.corrupted));
            }
            line
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(sent: u64, received: u64, successes: u64, duplicates: u64) -> Counters {
        Counters {
            sent,
            responses_validated: received,
            unique_successes: successes,
            duplicates_suppressed: duplicates,
            ..Counters::default()
        }
    }

    #[test]
    fn one_sample_per_second() {
        let mut m = Monitor::new();
        m.tick(0, &counts(0, 0, 0, 0), 1000); // t=0 boundary
        m.tick(500_000_000, &counts(5000, 10, 8, 0), 1000);
        m.tick(1_000_000_000, &counts(10_000, 25, 20, 1), 1000);
        m.tick(3_000_000_000, &counts(30_000, 70, 60, 2), 1000);
        let s = m.samples();
        // Boundaries at t=0,1,2,3.
        assert_eq!(s.len(), 4);
        assert_eq!(s[0].t_secs, 0);
        assert_eq!(s[1].t_secs, 1);
        assert_eq!(s[3].t_secs, 3);
        // Rate over second 1 = sent at that boundary minus before.
        assert_eq!(s[1].send_rate, 10_000.0);
    }

    #[test]
    fn percent_complete() {
        let mut m = Monitor::new();
        m.tick(0, &counts(250, 0, 0, 0), 1000);
        assert!((m.samples()[0].percent_complete - 25.0).abs() < 1e-9);
        let mut m = Monitor::new();
        m.tick(0, &counts(0, 0, 0, 0), 0);
        assert_eq!(m.samples()[0].percent_complete, 100.0);
    }

    #[test]
    fn status_line_renders() {
        let mut m = Monitor::new();
        assert!(m.status_line().is_none());
        m.tick(1_000_000_000, &counts(9000, 100, 90, 3), 10_000);
        let line = m.status_line().unwrap();
        assert!(line.contains("send: 9000"));
        assert!(line.contains("90 app success"));
        assert!(!line.contains("retries"), "clean scan omits fault counters");
    }

    #[test]
    fn status_line_shows_fault_counters_when_nonzero() {
        let mut m = Monitor::new();
        let mut c = counts(9000, 100, 90, 3);
        c.send_retries = 17;
        c.sendto_failures = 2;
        c.responses_corrupted = 5;
        m.tick(1_000_000_000, &c, 10_000);
        let line = m.status_line().unwrap();
        assert!(line.contains("retries: 17 (2 failed)"), "{line}");
        assert!(line.contains("corrupt: 5"), "{line}");
    }

    #[test]
    fn samples_carry_fault_counters() {
        let mut m = Monitor::new();
        let mut c = counts(10, 1, 1, 0);
        c.send_retries = 3;
        c.responses_corrupted = 1;
        m.tick(0, &c, 100);
        assert_eq!(m.samples()[0].retries, 3);
        assert_eq!(m.samples()[0].corrupted, 1);
        assert_eq!(m.samples()[0].send_failures, 0);
    }
}
