#![forbid(unsafe_code)]
//! The ZMap scanner as a Rust library.
//!
//! *Ten Years of ZMap* (§5) closes with "If we were to implement ZMap
//! today, we would do so in Rust" — this crate is that scanner, built
//! per the paper's own architecture lessons:
//!
//! * **library + CLI wrapper**: everything here is a library; `zmap-cli`
//!   is a thin argument parser over [`ScanConfig`] + [`Scanner`],
//! * **four output streams** (§5 "Data, Metadata, and Logs"): data
//!   records ([`output`]), leveled logs ([`log`]), 1 Hz real-time status
//!   ([`monitor`]), and machine-readable completion metadata
//!   ([`metadata`]),
//! * **static output schema**: results serialize to CSV/JSON Lines with
//!   fixed field types ([`output::SCHEMA`]),
//! * **stateless core**: target generation is the cyclic-group walk
//!   (zmap-targets), response validation is cookie-based (zmap-wire),
//!   dedup is the sliding window (zmap-dedup) — no per-probe state.
//!
//! The engine is generic over [`transport::Transport`]; the default
//! [`transport::SimTransport`] drives the zmap-netsim simulated Internet
//! deterministically, which is how every experiment in this repository
//! runs. A [`transport::LoopbackTransport`] exists for unit tests.
//!
//! # Quickstart
//!
//! ```
//! use zmap_core::{ScanConfig, Scanner, transport::SimNet};
//! use zmap_netsim::{ServiceModel, WorldConfig};
//!
//! // A dense /24 so the doctest is fast and deterministic.
//! let net = SimNet::new(WorldConfig {
//!     model: ServiceModel::dense(&[80]),
//!     loss: zmap_netsim::loss::LossModel::NONE,
//!     ..WorldConfig::default()
//! });
//! let mut cfg = ScanConfig::new("192.0.2.9".parse().unwrap());
//! cfg.allowlist_prefix("11.7.7.0".parse().unwrap(), 24);
//! cfg.ports = vec![80];
//! let summary = Scanner::new(cfg, net.transport("192.0.2.9".parse().unwrap()))
//!     .unwrap()
//!     .run();
//! assert_eq!(summary.sent, 256);
//! assert_eq!(summary.unique_successes, 256); // dense world: all open
//! ```

pub mod checkpoint;
pub mod config;
pub mod l7;
pub mod log;
pub mod metadata;
pub mod metrics;
#[cfg(test)]
mod model_check;
pub mod monitor;
pub mod output;
pub mod parallel;
pub mod plan;
pub mod probe_mod;
pub mod ratecontrol;
pub mod ring;
pub mod scanner;
pub mod shutdown;
pub mod supervisor;
pub mod transport;

pub use checkpoint::{CheckpointPolicy, CheckpointState, JournalError};
pub use config::{DedupMethod, Ipv6Config, ProbeKind, ScanConfig};
pub use plan::ScanPlan;
pub use shutdown::ShutdownToken;
pub use metadata::ScanMetadata;
pub use metrics::{CounterId, HistId, ScanMetrics};
pub use output::{Classification, OutputFormat, ScanResult};
pub use scanner::{ResumeError, RunOptions, ScanSummary, Scanner};
pub use supervisor::{
    JobEvent, JobOutcome, JobReport, JobSpec, Supervisor, SupervisorConfig, SupervisorError,
    SupervisorReport,
};
pub use transport::{LoopbackTransport, SimNet, SimTransport, Transport};
