//! Completion metadata — stream #4: a machine-readable record of what
//! ran, with what configuration, and what happened.
//!
//! §5: "Be liberal in what environment and execution information is
//! included in scan metadata, as it is difficult to know a priori what
//! will be useful."

use crate::config::ScanConfig;
use serde::Serialize;
use std::collections::BTreeMap;
use zmap_metrics::{HistogramSnapshot, MetricsSnapshot, TraceSnapshot};

/// Machine-readable scan metadata, serialized as a single JSON object at
/// scan completion.
#[derive(Debug, Clone, Serialize)]
pub struct ScanMetadata {
    /// Library version (Cargo package version).
    pub version: String,
    /// Configuration echo.
    pub config: ConfigEcho,
    /// The permutation parameters — enough to reproduce the exact probe
    /// order of this scan.
    pub permutation: PermutationEcho,
    /// Outcome counters.
    pub counters: Counters,
    /// Virtual duration of the scan in nanoseconds.
    pub duration_ns: u64,
    /// Engine latency histograms by name (probe RTT, batch flush span,
    /// checkpoint journal bytes, cooldown drain), sorted by key.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Bounded trace of scan lifecycle events, sorted by virtual time.
    pub trace: TraceSnapshot,
    /// RTT samples lost to in-flight tracker capacity (nonzero marks the
    /// `probe_rtt_ns` histogram as a lower bound).
    pub inflight_overflow: u64,
}

/// The serializable subset of [`ScanConfig`]. `Serialize` is written by
/// hand (below) so the two v6-only fields are *skipped* when `None`: the
/// config digest serializes this echo, and a v4 config must keep its
/// pre-v6 byte-identical JSON.
#[derive(Debug, Clone)]
pub struct ConfigEcho {
    pub source_ip: String,
    /// IPv6 wire source address; present only in v6 mode.
    pub ipv6_source: Option<String>,
    /// The full prefix-list contents in v6 mode. Folding the list into
    /// the echo makes the config digest — and so checkpoint-resume
    /// compatibility — cover the target space.
    pub prefix_list: Option<String>,
    pub seed: u64,
    pub ports: Vec<u16>,
    pub probe: String,
    pub rate_pps: u64,
    pub probes_per_target: u32,
    pub cooldown_secs: u64,
    pub shard: u32,
    pub num_shards: u32,
    pub subshards: u32,
    pub shard_algorithm: String,
    pub option_layout: String,
    pub ip_id: String,
    /// Stealth re-key block count; present only when re-keying is on.
    pub rekey_blocks: Option<u32>,
    pub dedup: String,
    pub max_retries: u32,
}

impl Serialize for ConfigEcho {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let extra = self.ipv6_source.is_some() as usize
            + self.prefix_list.is_some() as usize
            + self.rekey_blocks.is_some() as usize;
        let mut st = serializer.serialize_struct("ConfigEcho", 15 + extra)?;
        st.serialize_field("source_ip", &self.source_ip)?;
        // v6-only fields ride between source_ip and seed, but only when
        // present — absent fields must leave no trace in the JSON.
        if let Some(v6) = &self.ipv6_source {
            st.serialize_field("ipv6_source", v6)?;
        }
        if let Some(list) = &self.prefix_list {
            st.serialize_field("prefix_list", list)?;
        }
        st.serialize_field("seed", &self.seed)?;
        st.serialize_field("ports", &self.ports)?;
        st.serialize_field("probe", &self.probe)?;
        st.serialize_field("rate_pps", &self.rate_pps)?;
        st.serialize_field("probes_per_target", &self.probes_per_target)?;
        st.serialize_field("cooldown_secs", &self.cooldown_secs)?;
        st.serialize_field("shard", &self.shard)?;
        st.serialize_field("num_shards", &self.num_shards)?;
        st.serialize_field("subshards", &self.subshards)?;
        st.serialize_field("shard_algorithm", &self.shard_algorithm)?;
        st.serialize_field("option_layout", &self.option_layout)?;
        st.serialize_field("ip_id", &self.ip_id)?;
        // Like the v6 fields: only stealth configs carry the re-key echo,
        // so classic configs keep their pre-stealth byte-identical JSON
        // (and so their pre-stealth config digest).
        if let Some(blocks) = &self.rekey_blocks {
            st.serialize_field("rekey_blocks", blocks)?;
        }
        st.serialize_field("dedup", &self.dedup)?;
        st.serialize_field("max_retries", &self.max_retries)?;
        st.end()
    }
}

/// Cyclic-group walk parameters.
#[derive(Debug, Clone, Serialize)]
pub struct PermutationEcho {
    pub group_prime: u64,
    pub generator: u64,
    pub offset: u64,
}

/// Outcome counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct Counters {
    pub targets_total: u64,
    pub sent: u64,
    pub responses_validated: u64,
    pub responses_discarded: u64,
    pub duplicates_suppressed: u64,
    pub unique_successes: u64,
    pub unique_failures: u64,
    /// Send attempts retried after a transient transport failure.
    pub send_retries: u64,
    /// Probes abandoned after exhausting retries (never sent).
    pub sendto_failures: u64,
    /// Responses rejected by checksum validation (bit errors in flight).
    pub responses_corrupted: u64,
    /// Poisoned world-lock acquisitions recovered instead of cascading
    /// the panic (threaded engine only; always 0 single-threaded).
    pub lock_poison_recoveries: u64,
    /// Checkpoint journals written (periodic plus final).
    pub checkpoints_written: u64,
    /// Times this scan has been resumed from a checkpoint journal
    /// (cumulative across attempts).
    pub resume_count: u64,
    /// Supervisor interventions: intervals with no virtual-clock or
    /// counter progress that the watchdog broke out of.
    pub watchdog_stalls: u64,
    /// 1 when the engine exited through the orderly shutdown path
    /// (cooldown drained, streams flushed, final checkpoint written);
    /// 0 when it was killed mid-flight.
    pub shutdown_clean: u64,
    /// Jobs the supervisor admitted to the worker pool (supervisor runs
    /// only; always 0 for a standalone scan).
    pub jobs_admitted: u64,
    /// Worker attempts restarted after a death (kill, panic, or
    /// watchdog stall) — each restart replays the job's journal.
    pub worker_restarts: u64,
    /// Jobs the circuit breaker parked as `degraded` after exhausting
    /// the restart budget, instead of crash-looping.
    pub jobs_degraded: u64,
    /// Checkpoint journals migrated onto a fresh worker (a restart that
    /// had a journal to rewind; first-attempt retries without one are
    /// restarts but not migrations).
    pub migrations: u64,
}

impl ConfigEcho {
    /// Extracts the echo from a config.
    pub fn from_config(cfg: &ScanConfig) -> Self {
        ConfigEcho {
            source_ip: cfg.source_ip.to_string(),
            ipv6_source: cfg.ipv6.as_ref().map(|v6| v6.source_ip.to_string()),
            prefix_list: cfg.ipv6.as_ref().map(|v6| v6.prefix_list.clone()),
            seed: cfg.seed,
            ports: cfg.ports.clone(),
            probe: format!("{:?}", cfg.probe),
            rate_pps: cfg.rate_pps,
            probes_per_target: cfg.probes_per_target,
            cooldown_secs: cfg.cooldown_secs,
            shard: cfg.shard,
            num_shards: cfg.num_shards,
            subshards: cfg.subshards,
            shard_algorithm: format!("{:?}", cfg.shard_algorithm),
            option_layout: format!("{:?}", cfg.option_layout),
            ip_id: format!("{:?}", cfg.ip_id),
            rekey_blocks: (cfg.rekey_blocks > 0).then_some(cfg.rekey_blocks),
            dedup: format!("{:?}", cfg.dedup),
            max_retries: cfg.max_retries,
        }
    }
}

impl ScanMetadata {
    /// Serializes to the canonical single-line JSON form.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("metadata is always serializable")
    }

    /// Folds a registry snapshot into the metadata's `histograms`,
    /// `trace`, and `inflight_overflow` sections.
    pub fn attach_metrics(&mut self, snap: MetricsSnapshot) {
        self.histograms = snap.histograms;
        self.trace = snap.trace;
        self.inflight_overflow = snap.inflight_overflow;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn metadata_roundtrips_through_json() {
        let cfg = ScanConfig::new(Ipv4Addr::new(192, 0, 2, 1));
        let md = ScanMetadata {
            version: env!("CARGO_PKG_VERSION").to_string(),
            config: ConfigEcho::from_config(&cfg),
            permutation: PermutationEcho {
                group_prime: 4_294_967_311,
                generator: 12345,
                offset: 42,
            },
            counters: Counters {
                targets_total: 100,
                sent: 100,
                responses_validated: 37,
                responses_discarded: 2,
                duplicates_suppressed: 1,
                unique_successes: 30,
                unique_failures: 6,
                send_retries: 4,
                sendto_failures: 1,
                responses_corrupted: 2,
                lock_poison_recoveries: 1,
                checkpoints_written: 3,
                resume_count: 1,
                watchdog_stalls: 0,
                shutdown_clean: 1,
                jobs_admitted: 2,
                worker_restarts: 3,
                jobs_degraded: 1,
                migrations: 2,
            },
            duration_ns: 5_000_000_000,
            histograms: BTreeMap::new(),
            trace: TraceSnapshot::default(),
            inflight_overflow: 0,
        };
        let mut rtt = zmap_metrics::Log2Histogram::new();
        rtt.record(50_000);
        rtt.record(75_000);
        let mut md = md;
        let mut snap = MetricsSnapshot::default();
        snap.histograms.insert("probe_rtt_ns".into(), rtt.snapshot());
        snap.trace.events.push(zmap_metrics::TraceEventSnapshot {
            t_ns: 0,
            kind: "scan_start".into(),
            detail: 100,
        });
        md.attach_metrics(snap);
        let json = md.to_json();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["config"]["source_ip"], "192.0.2.1");
        assert_eq!(v["permutation"]["group_prime"], 4_294_967_311u64);
        assert_eq!(v["counters"]["unique_successes"], 30);
        assert_eq!(v["config"]["rate_pps"], 10_000);
        assert_eq!(v["counters"]["send_retries"], 4);
        assert_eq!(v["counters"]["sendto_failures"], 1);
        assert_eq!(v["counters"]["responses_corrupted"], 2);
        assert_eq!(v["counters"]["lock_poison_recoveries"], 1);
        assert_eq!(v["counters"]["checkpoints_written"], 3);
        assert_eq!(v["counters"]["resume_count"], 1);
        assert_eq!(v["counters"]["watchdog_stalls"], 0);
        assert_eq!(v["counters"]["shutdown_clean"], 1);
        assert_eq!(v["counters"]["jobs_admitted"], 2);
        assert_eq!(v["counters"]["worker_restarts"], 3);
        assert_eq!(v["counters"]["jobs_degraded"], 1);
        assert_eq!(v["counters"]["migrations"], 2);
        assert!(v["config"]["max_retries"].is_u64());
        assert!(v["version"].as_str().unwrap().contains('.'));
        assert_eq!(v["histograms"]["probe_rtt_ns"]["count"], 2);
        assert_eq!(v["trace"]["events"][0]["kind"], "scan_start");
        assert_eq!(v["inflight_overflow"], 0);
    }

    #[test]
    fn v6_echo_fields_are_absent_for_v4_configs() {
        // The config digest serializes this echo: a v4 config must
        // produce byte-identical JSON to pre-v6 builds (no null fields),
        // while a v6 config folds the prefix list into the digest.
        let cfg = ScanConfig::new(Ipv4Addr::new(192, 0, 2, 1));
        let json = serde_json::to_string(&ConfigEcho::from_config(&cfg)).unwrap();
        assert!(!json.contains("ipv6_source"), "{json}");
        assert!(!json.contains("prefix_list"), "{json}");

        let mut v6 = ScanConfig::new(Ipv4Addr::new(192, 0, 2, 1));
        v6.ipv6 = Some(crate::config::Ipv6Config {
            source_ip: "2001:db8::1".parse().unwrap(),
            prefix_list: "2001:db8:a::/48 pattern=low bits=4\n".into(),
        });
        let echo = ConfigEcho::from_config(&v6);
        assert_eq!(echo.ipv6_source.as_deref(), Some("2001:db8::1"));
        assert!(echo.prefix_list.as_deref().unwrap().contains("/48"));
    }

    #[test]
    fn rekey_echo_absent_for_classic_configs() {
        // Same contract as the v6 fields: a non-stealth config's echo
        // JSON (and so its config digest) must not change because the
        // stealth field exists.
        let cfg = ScanConfig::new(Ipv4Addr::new(192, 0, 2, 1));
        let json = serde_json::to_string(&ConfigEcho::from_config(&cfg)).unwrap();
        assert!(!json.contains("rekey_blocks"), "{json}");

        let mut stealth = ScanConfig::new(Ipv4Addr::new(192, 0, 2, 1));
        stealth.rekey_blocks = 16;
        let json = serde_json::to_string(&ConfigEcho::from_config(&stealth)).unwrap();
        assert!(json.contains("\"rekey_blocks\":16"), "{json}");
    }

    #[test]
    fn config_echo_captures_ports_and_shards() {
        let mut cfg = ScanConfig::new(Ipv4Addr::new(192, 0, 2, 1));
        cfg.ports = vec![80, 443];
        cfg.shard = 2;
        cfg.num_shards = 5;
        let echo = ConfigEcho::from_config(&cfg);
        assert_eq!(echo.ports, vec![80, 443]);
        assert_eq!(echo.shard, 2);
        assert_eq!(echo.num_shards, 5);
        assert!(echo.shard_algorithm.contains("Pizza"));
    }
}
