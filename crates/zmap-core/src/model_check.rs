//! Model checking for the TX-pipeline concurrency primitives.
//!
//! These tests run the *real* [`SpscRing`] and [`ShutdownToken`] code —
//! not a model of it — under `zmap-sched`'s deterministic scheduler: in
//! test builds the types' atomics are zmap-sched shims (see the `use`
//! swaps in `ring.rs` / `shutdown.rs`), so every atomic operation is a
//! scheduling point. The explorer enumerates all interleavings up to a
//! fixed decision depth and probes beyond it with a seeded random tail,
//! so a failure here is a reproducible schedule, not a flaky race.
//!
//! Invariants checked, from the SpscRing protocol in DESIGN.md §9:
//!
//! - **No stale or double-popped frame**: the consumer observes exactly
//!   the pushed sequence, in order, once — under every schedule.
//! - **Close/drain terminates**: whichever side closes, both threads
//!   finish within the step budget (`Stats::cap_exceeded == 0`), and
//!   values queued before the close still drain.
//! - **Ordering discipline holds at runtime**: no executed operation
//!   used `SeqCst`, matching the `atomics-ordering-discipline` lint's
//!   static ban.
//!
//! CI runs these at the same fixed seed and depth every time (they are
//! plain unit tests); see `.github/workflows/ci.yml` (`model-check`).

use crate::ring::SpscRing;
use crate::shutdown::ShutdownToken;
use std::sync::atomic::Ordering;
use std::sync::Mutex;
use zmap_sched::{explore, Config, Stats};

/// The fixed exploration budget CI runs at: every schedule with up to
/// `DEPTH` branching decisions is enumerated exhaustively; longer
/// schedules continue with a tail seeded by `SEED`.
const DEPTH: usize = 10;
const SEED: u64 = 0x10ae_2024_5eed;

fn config() -> Config {
    Config { depth: DEPTH, seed: SEED, max_steps: 50_000, max_schedules: 4096 }
}

/// Every explored schedule must terminate within the step budget, and
/// the exploration must have actually branched.
fn assert_live(stats: &Stats) {
    assert_eq!(
        stats.cap_exceeded, 0,
        "a schedule exceeded the step budget: close/drain failed to terminate"
    );
    assert!(stats.schedules > 1, "exploration never branched — shim not wired?");
}

#[test]
fn ring_delivers_exactly_the_pushed_sequence_under_all_schedules() {
    let stats = explore(config(), |sched| {
        // Capacity 2 under 5 values: wraparound and the full boundary
        // are both exercised inside the explored window.
        let ring = SpscRing::with_capacity(2);
        let popped = Mutex::new(Vec::new());
        sched.run(vec![
            Box::new(|| {
                for v in 0..5u64 {
                    ring.push(v).expect("consumer drains until close");
                }
                ring.close();
            }),
            Box::new(|| {
                while let Some(v) = ring.pop() {
                    popped.lock().unwrap().push(v);
                }
            }),
        ]);
        let got = popped.into_inner().unwrap();
        assert_eq!(
            got,
            vec![0, 1, 2, 3, 4],
            "stale, lost, reordered, or double-popped frame"
        );
        assert!(
            sched.events().iter().all(|e| e.ordering != Ordering::SeqCst),
            "an executed atomic used SeqCst despite the declared protocol"
        );
    });
    assert_live(&stats);
}

#[test]
fn consumer_side_close_unblocks_a_producer_stuck_on_full() {
    let stats = explore(config(), |sched| {
        let ring = SpscRing::with_capacity(1);
        ring.try_push(0u64).unwrap();
        sched.run(vec![
            // Spins on the full boundary until the close lands.
            Box::new(|| {
                assert_eq!(ring.push(1), Err(1), "push must fail once closed");
            }),
            Box::new(|| ring.close()),
        ]);
        // The value queued before the close still drains afterwards.
        assert_eq!(ring.try_pop(), Some(0));
        assert_eq!(ring.try_pop(), None);
    });
    assert_live(&stats);
}

#[test]
fn producer_side_close_never_loses_queued_frames() {
    let stats = explore(config(), |sched| {
        let ring = SpscRing::with_capacity(4);
        let popped = Mutex::new(Vec::new());
        sched.run(vec![
            Box::new(|| {
                ring.try_push(7u64).unwrap();
                ring.try_push(8).unwrap();
                ring.close();
            }),
            // A consumer racing the close must still see both frames:
            // close refuses new pushes but never drops queued values.
            Box::new(|| {
                while let Some(v) = ring.pop() {
                    popped.lock().unwrap().push(v);
                }
            }),
        ]);
        assert_eq!(popped.into_inner().unwrap(), vec![7, 8]);
    });
    assert_live(&stats);
}

#[test]
fn racing_try_push_try_pop_never_fabricates_or_drops_a_value() {
    let stats = explore(config(), |sched| {
        let ring = SpscRing::with_capacity(2);
        let pushed = Mutex::new(0u64);
        let popped = Mutex::new(Vec::new());
        sched.run(vec![
            // Non-blocking producer: counts what actually landed.
            Box::new(|| {
                let mut n = 0;
                for v in 0..3u64 {
                    if ring.try_push(v).is_ok() {
                        n += 1;
                    }
                }
                *pushed.lock().unwrap() = n;
            }),
            // Non-blocking consumer: may observe any prefix.
            Box::new(|| {
                for _ in 0..3 {
                    if let Some(v) = ring.try_pop() {
                        popped.lock().unwrap().push(v);
                    }
                }
            }),
        ]);
        let n = *pushed.lock().unwrap();
        let mut got = popped.into_inner().unwrap();
        // Drain the remainder on the main thread (uncontrolled is fine:
        // both workers are joined).
        while let Some(v) = ring.try_pop() {
            got.push(v);
        }
        // try_push skips values when full, but whatever landed comes out
        // exactly once, in order, with nothing invented.
        assert_eq!(got, (0..n).collect::<Vec<_>>());
    });
    assert_live(&stats);
}

#[test]
fn shutdown_request_is_always_observed_and_terminates() {
    let stats = explore(config(), |sched| {
        let token = ShutdownToken::new();
        let requester = token.clone();
        let observed = Mutex::new(false);
        sched.run(vec![
            Box::new(move || requester.request()),
            // The engine's poll loop: spins until the flag lands. The
            // step budget converts a lost-wakeup bug into a hard fail.
            Box::new(|| {
                while !token.is_requested() {
                    std::hint::spin_loop();
                }
                *observed.lock().unwrap() = true;
            }),
        ]);
        assert!(*observed.lock().unwrap());
    });
    assert_live(&stats);
}

#[test]
fn exploration_is_deterministic_at_the_pinned_seed() {
    // CI depends on this: the model-check job reports schedule counts,
    // and a drift at a fixed seed+depth means the harness (or the ring)
    // changed behavior.
    let run = || {
        explore(config(), |sched| {
            let ring = SpscRing::with_capacity(1);
            sched.run(vec![
                Box::new(|| {
                    let _ = ring.push(1u64);
                    ring.close();
                }),
                Box::new(|| while ring.pop().is_some() {}),
            ]);
        })
    };
    let (a, b) = (run(), run());
    assert_eq!(a.schedules, b.schedules);
    assert_eq!(a.steps, b.steps);
    assert_eq!(a.cap_exceeded, 0);
    assert!(a.exhausted || a.schedules == config().max_schedules);
}
