//! Scan configuration — the library-level equivalent of ZMap's CLI flags.

use serde::Serialize;
use std::net::{Ipv4Addr, Ipv6Addr};
use zmap_targets::parse::default_blocklist;
use zmap_targets::{Constraint, ShardAlgorithm};
use zmap_wire::ipv4::IpIdMode;
use zmap_wire::options::OptionLayout;

/// Which probe module to run (ZMap ships many; these are the core three).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum ProbeKind {
    /// TCP SYN scan ("tcp_synscan", the default).
    TcpSyn,
    /// ICMP echo scan ("icmp_echoscan").
    IcmpEcho,
    /// UDP probe with a fixed payload ("udp").
    Udp(Vec<u8>),
}

/// Response deduplication strategy (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum DedupMethod {
    /// No deduplication (every response is reported).
    None,
    /// Exact paged bitmap — single-port scans only (512 MB worst case).
    FullBitmap,
    /// Sliding window of the last n distinct targets (ZMap default,
    /// n = 10^6).
    Window(usize),
}

/// IPv6 scanning mode (XMap-style, see DESIGN.md §11). When set, the
/// target space is the prefix list below — walked per-prefix by
/// `zmap_targets::V6TargetSpace` — instead of the IPv4 constraint, and
/// probes are built by the v6 wire path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv6Config {
    /// Scanner IPv6 source address (the wire-level source; the IPv4
    /// `source_ip` still names the simulator endpoint the scanner is
    /// attached to).
    pub source_ip: Ipv6Addr,
    /// Prefix-list file *contents*, one `prefix/len [pattern=] [bits=]
    /// [density=]` spec per line. The CLI reads `--prefix-list` into
    /// this; the library never touches the filesystem.
    pub prefix_list: String,
}

/// Everything a scan needs. Construct with [`ScanConfig::new`] and adjust
/// fields; `Scanner::new` validates.
#[derive(Debug, Clone)]
pub struct ScanConfig {
    /// Scanner source address.
    pub source_ip: Ipv4Addr,
    /// Scan seed: fixes the permutation, validation key, and all
    /// procedural choices. Random per scan in real deployments.
    pub seed: u64,
    /// Target ports (ignored by the ICMP module).
    pub ports: Vec<u16>,
    /// Probe module.
    pub probe: ProbeKind,
    /// Address constraint (allowlist/blocklist composition). Ignored in
    /// IPv6 mode, where `ipv6.prefix_list` defines the target space.
    pub constraint: Constraint,
    /// IPv6 mode: `Some` switches target generation, probe construction,
    /// and dedup keying to the 128-bit path.
    pub ipv6: Option<Ipv6Config>,
    /// Apply the IANA reserved-space blocklist on top of the constraint
    /// (ZMap always does unless explicitly overridden).
    pub apply_default_blocklist: bool,
    /// Probes per second.
    pub rate_pps: u64,
    /// Probes sent per target (ZMap `--probes`, default 1).
    pub probes_per_target: u32,
    /// Stop after this many targets (0 = whole shard).
    pub max_targets: u64,
    /// Stop after this many unique successful results (0 = unlimited).
    pub max_results: u64,
    /// Seconds to keep listening after the last probe (ZMap `--cooldown`,
    /// default 8).
    pub cooldown_secs: u64,
    /// This machine's shard and the shard count.
    pub shard: u32,
    pub num_shards: u32,
    /// Send "threads" (subshards). The simulator engine interleaves them
    /// on one thread; the partition semantics match threaded ZMap.
    pub subshards: u32,
    /// Sharding algorithm (pizza since 2017).
    pub shard_algorithm: ShardAlgorithm,
    /// TCP option layout for SYN probes (§4.3; default MSS-only).
    pub option_layout: OptionLayout,
    /// IP ID policy (§4.3; default random since 2024).
    pub ip_id: IpIdMode,
    /// Stealth re-keying: walk the v4 candidate space as this many
    /// independently keyed blocks in seeded pseudorandom order, so a
    /// darknet cannot recover one permutation from the observed probe
    /// order (Mazel & Strullu countermeasure). `0` (the default) keeps
    /// the classic single permutation; `1` is rejected at plan build.
    /// CLI `--stealth` sets this together with random IP ID.
    pub rekey_blocks: u32,
    /// Deduplication (§4.1; default 10^6-entry sliding window).
    pub dedup: DedupMethod,
    /// Report RST/unreachable (host-alive-but-closed) results too, not
    /// just successes (ZMap's default reports only successes).
    pub report_failures: bool,
    /// Retries per probe when the transport reports a transient send
    /// failure (EAGAIN), each after an exponential virtual-time backoff.
    /// A probe whose retries are exhausted is counted as a send drop.
    pub max_retries: u32,
    /// Frames queued per batched send (ZMap `--batch`, default 64):
    /// probes are rendered into a reusable frame pool and flushed through
    /// one `sendmmsg`-style transport call per batch. A pure performance
    /// knob — the results stream is identical for any value ≥ 1 — so it
    /// is excluded from the config digest.
    pub batch: usize,
    /// Decouple probe generation from transport in the parallel engine:
    /// each subshard becomes a generator thread rendering batches into a
    /// bounded SPSC frame ring drained by a dedicated transport thread
    /// (the netmap/PF_RING shape from §4.2). Pure performance topology —
    /// schedule, results, and checkpoints are identical either way — so,
    /// like `batch`, it is excluded from the config digest.
    pub tx_pipeline: bool,
    /// Internal: whether `allowlist_prefix` has replaced the default
    /// allow-all constraint yet.
    allowlist_started: bool,
}

impl ScanConfig {
    /// A config with ZMap's defaults: full IPv4 minus the reserved-space
    /// blocklist, TCP/80 SYN scan, 10 kpps, window dedup.
    pub fn new(source_ip: Ipv4Addr) -> Self {
        ScanConfig {
            source_ip,
            seed: 0,
            ports: vec![80],
            probe: ProbeKind::TcpSyn,
            constraint: Constraint::new(true),
            ipv6: None,
            apply_default_blocklist: true,
            rate_pps: 10_000,
            probes_per_target: 1,
            max_targets: 0,
            max_results: 0,
            cooldown_secs: 8,
            shard: 0,
            num_shards: 1,
            subshards: 1,
            shard_algorithm: ShardAlgorithm::Pizza,
            option_layout: OptionLayout::MssOnly,
            ip_id: IpIdMode::Random,
            rekey_blocks: 0,
            dedup: DedupMethod::Window(1_000_000),
            report_failures: false,
            max_retries: 3,
            batch: 64,
            tx_pipeline: false,
            allowlist_started: false,
        }
    }

    /// Replaces the constraint with "deny all, allow this prefix" — the
    /// common single-subnet experiment setup. Callable repeatedly to add
    /// prefixes.
    pub fn allowlist_prefix(&mut self, net: Ipv4Addr, len: u8) {
        if self.allowlist_started {
            self.constraint.set_prefix(u32::from(net), len, true);
        } else {
            let mut c = Constraint::new(false);
            c.set_prefix(u32::from(net), len, true);
            self.constraint = c;
            self.allowlist_started = true;
        }
    }

    /// Blocks a prefix (on top of whatever is allowed).
    pub fn blocklist_prefix(&mut self, net: Ipv4Addr, len: u8) {
        self.constraint.set_prefix(u32::from(net), len, false);
    }

    /// The final constraint with the default blocklist applied (what the
    /// scanner actually walks). Callers must `finalize()` before counting.
    pub fn effective_constraint(&self) -> Constraint {
        let mut c = self.constraint.clone();
        if self.apply_default_blocklist {
            for cidr in default_blocklist() {
                c.set_prefix(cidr.addr, cidr.len, false);
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_zmap() {
        let c = ScanConfig::new(Ipv4Addr::new(192, 0, 2, 1));
        assert_eq!(c.ports, vec![80]);
        assert_eq!(c.rate_pps, 10_000);
        assert_eq!(c.cooldown_secs, 8);
        assert_eq!(c.option_layout, OptionLayout::MssOnly);
        assert_eq!(c.ip_id, IpIdMode::Random);
        assert_eq!(c.dedup, DedupMethod::Window(1_000_000));
        assert_eq!(c.shard_algorithm, ShardAlgorithm::Pizza);
        assert_eq!(c.batch, 64, "ZMap's sendmmsg batch default");
        assert!(c.apply_default_blocklist);
    }

    #[test]
    fn allowlist_accumulates() {
        let mut c = ScanConfig::new(Ipv4Addr::new(192, 0, 2, 1));
        c.allowlist_prefix(Ipv4Addr::new(11, 0, 0, 0), 24);
        c.allowlist_prefix(Ipv4Addr::new(12, 0, 0, 0), 24);
        let mut eff = c.effective_constraint();
        eff.finalize();
        assert_eq!(eff.allowed_count(), 512);
        assert!(eff.is_allowed(u32::from(Ipv4Addr::new(11, 0, 0, 5))));
        assert!(!eff.is_allowed(u32::from(Ipv4Addr::new(13, 0, 0, 5))));
    }

    #[test]
    fn default_blocklist_is_applied() {
        let c = ScanConfig::new(Ipv4Addr::new(192, 0, 2, 1));
        let mut eff = c.effective_constraint();
        eff.finalize();
        // Multicast and RFC1918 are gone.
        assert!(!eff.is_allowed(u32::from(Ipv4Addr::new(224, 0, 0, 1))));
        assert!(!eff.is_allowed(u32::from(Ipv4Addr::new(10, 1, 2, 3))));
        assert!(eff.is_allowed(u32::from(Ipv4Addr::new(8, 8, 8, 8))));
        // ~600M addresses blocked.
        let blocked = (1u64 << 32) - eff.allowed_count();
        assert!(blocked > 500_000_000 && blocked < 800_000_000, "{blocked}");
    }

    #[test]
    fn blocklist_on_top_of_allowlist() {
        let mut c = ScanConfig::new(Ipv4Addr::new(192, 0, 2, 1));
        c.allowlist_prefix(Ipv4Addr::new(20, 0, 0, 0), 16);
        c.blocklist_prefix(Ipv4Addr::new(20, 0, 5, 0), 24);
        let mut eff = c.effective_constraint();
        eff.finalize();
        assert_eq!(eff.allowed_count(), 65536 - 256);
    }
}
