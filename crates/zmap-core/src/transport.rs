//! The engine/wire boundary.
//!
//! [`Transport`] is everything the scanner needs from "a NIC": a clock,
//! a way to emit frames, and a way to poll received frames. The engine is
//! generic over it, which is what keeps the library testable and lets the
//! whole evaluation run against the simulated Internet.
//!
//! Sends are fallible: a transport may refuse a frame transiently
//! ([`SendError::WouldBlock`], the simulator's EAGAIN), and the engine is
//! responsible for retrying with backoff.
//!
//! * [`SimTransport`] — couples a scanner to a shared
//!   [`zmap_netsim::World`]; time is virtual and owned by the scanner.
//! * [`LoopbackTransport`] — frames sent are scripted/inspected directly
//!   (engine unit tests); send failures can be scripted per attempt.

use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;
use zmap_netsim::{EndpointId, SendError, World, WorldConfig};

/// A scanner's view of the network.
pub trait Transport {
    /// Current time in nanoseconds. Virtual for simulations.
    fn now(&self) -> u64;

    /// Advances the clock to `t` (no-op if `t` is in the past).
    fn advance_to(&mut self, t: u64);

    /// Emits one frame at the current time. `Err(WouldBlock)` means the
    /// frame was not sent and the caller may retry after a backoff.
    #[must_use = "an unchecked send error is a silently lost probe"]
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), SendError>;

    /// All frames received up to the current time, with receive
    /// timestamps.
    fn recv_frames(&mut self) -> Vec<(u64, Vec<u8>)>;

    /// Timestamp of the next pending inbound frame, if the transport can
    /// know it (lets the engine fast-forward through idle cooldown).
    fn next_rx_at(&self) -> Option<u64> {
        None
    }

    /// True once the scanning process has been declared dead by a fault
    /// schedule. Engines poll this on the receive path so a kill can land
    /// mid-cooldown, where no sends occur. Real transports never die this
    /// way; only simulations script it.
    fn killed(&self) -> bool {
        false
    }
}

/// A shared simulated Internet that multiple scanner transports attach to.
///
/// Cloning the handle is cheap; all clones refer to one world.
#[derive(Clone)]
pub struct SimNet {
    world: Rc<RefCell<World>>,
}

impl SimNet {
    /// Builds a world from config.
    pub fn new(cfg: WorldConfig) -> Self {
        SimNet {
            world: Rc::new(RefCell::new(World::new(cfg))),
        }
    }

    /// Attaches a scanner endpoint at `ip` and returns its transport.
    pub fn transport(&self, ip: Ipv4Addr) -> SimTransport {
        let ep = self.world.borrow_mut().attach(ip);
        SimTransport {
            world: self.world.clone(),
            ep,
            now: 0,
        }
    }

    /// Access the underlying world (stats, darknet captures).
    pub fn with_world<R>(&self, f: impl FnOnce(&mut World) -> R) -> R {
        f(&mut self.world.borrow_mut())
    }
}

/// Transport backed by a [`SimNet`].
pub struct SimTransport {
    world: Rc<RefCell<World>>,
    ep: EndpointId,
    now: u64,
}

impl Transport for SimTransport {
    fn now(&self) -> u64 {
        self.now
    }

    fn advance_to(&mut self, t: u64) {
        if t > self.now {
            self.now = t;
        }
    }

    fn send_frame(&mut self, frame: &[u8]) -> Result<(), SendError> {
        self.world.borrow_mut().send(self.ep, frame, self.now)
    }

    fn recv_frames(&mut self) -> Vec<(u64, Vec<u8>)> {
        self.world.borrow_mut().recv_ready(self.ep, self.now)
    }

    fn next_rx_at(&self) -> Option<u64> {
        self.world.borrow().next_event_at()
    }

    fn killed(&self) -> bool {
        self.world.borrow().kill_fired()
    }
}

/// In-memory transport for engine unit tests: records what the engine
/// sends; tests push frames to be received and may script send failures.
#[derive(Default)]
pub struct LoopbackTransport {
    now: u64,
    /// Frames the engine sent, with send timestamps.
    pub sent: Vec<(u64, Vec<u8>)>,
    /// Frames queued for the engine, with receive timestamps.
    pub inbox: Vec<(u64, Vec<u8>)>,
    /// Attempt numbers (0-based, counting every `send_frame` call) that
    /// fail with `WouldBlock` — scripts EAGAIN bursts for retry tests.
    pub fail_attempts: Vec<u64>,
    attempts: u64,
}

impl LoopbackTransport {
    /// An empty loopback transport at t=0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Transport for LoopbackTransport {
    fn now(&self) -> u64 {
        self.now
    }

    fn advance_to(&mut self, t: u64) {
        if t > self.now {
            self.now = t;
        }
    }

    fn send_frame(&mut self, frame: &[u8]) -> Result<(), SendError> {
        let attempt = self.attempts;
        self.attempts += 1;
        if self.fail_attempts.contains(&attempt) {
            return Err(SendError::WouldBlock);
        }
        self.sent.push((self.now, frame.to_vec()));
        Ok(())
    }

    fn recv_frames(&mut self) -> Vec<(u64, Vec<u8>)> {
        let now = self.now;
        let (ready, later): (Vec<_>, Vec<_>) =
            self.inbox.drain(..).partition(|&(t, _)| t <= now);
        self.inbox = later;
        ready
    }

    fn next_rx_at(&self) -> Option<u64> {
        self.inbox.iter().map(|&(t, _)| t).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_clock_is_monotone() {
        let mut t = LoopbackTransport::new();
        t.advance_to(100);
        t.advance_to(50); // ignored
        assert_eq!(t.now(), 100);
    }

    #[test]
    fn loopback_delivers_by_time() {
        let mut t = LoopbackTransport::new();
        t.inbox.push((100, vec![1]));
        t.inbox.push((200, vec![2]));
        t.advance_to(150);
        let got = t.recv_frames();
        assert_eq!(got, vec![(100, vec![1])]);
        assert_eq!(t.next_rx_at(), Some(200));
        t.advance_to(200);
        assert_eq!(t.recv_frames().len(), 1);
    }

    #[test]
    fn loopback_scripts_send_failures() {
        let mut t = LoopbackTransport::new();
        t.fail_attempts = vec![0, 2];
        assert_eq!(t.send_frame(&[1]), Err(SendError::WouldBlock));
        assert_eq!(t.send_frame(&[2]), Ok(()));
        assert_eq!(t.send_frame(&[3]), Err(SendError::WouldBlock));
        assert_eq!(t.send_frame(&[3]), Ok(()));
        let frames: Vec<u8> = t.sent.iter().map(|(_, f)| f[0]).collect();
        assert_eq!(frames, vec![2, 3], "failed attempts record nothing");
    }

    #[test]
    fn sim_transport_roundtrip() {
        use zmap_netsim::{loss::LossModel, ServiceModel};
        use zmap_wire::probe::ProbeBuilder;
        let net = SimNet::new(WorldConfig {
            model: ServiceModel::dense(&[80]),
            loss: LossModel::NONE,
            ..WorldConfig::default()
        });
        let src = Ipv4Addr::new(192, 0, 2, 5);
        let mut t = net.transport(src);
        let b = ProbeBuilder::new(src, 7);
        t.send_frame(&b.tcp_syn(Ipv4Addr::new(7, 7, 7, 7), 80, 0)).unwrap();
        assert!(t.recv_frames().is_empty(), "response takes RTT");
        let rx_at = t.next_rx_at().expect("scheduled");
        t.advance_to(rx_at);
        let frames = t.recv_frames();
        assert_eq!(frames.len(), 1);
        assert!(b.parse_response(&frames[0].1).unwrap().is_some());
        assert_eq!(net.with_world(|w| w.stats().frames_sent), 1);
    }

    #[test]
    fn two_transports_share_one_world() {
        let net = SimNet::new(WorldConfig::default());
        let _a = net.transport(Ipv4Addr::new(1, 1, 1, 1));
        let _b = net.transport(Ipv4Addr::new(2, 2, 2, 2));
        assert_eq!(net.with_world(|w| w.stats().frames_sent), 0);
    }
}
