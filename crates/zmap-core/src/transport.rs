//! The engine/wire boundary.
//!
//! [`Transport`] is everything the scanner needs from "a NIC": a clock,
//! a way to emit frames, and a way to poll received frames. The engine is
//! generic over it, which is what keeps the library testable and lets the
//! whole evaluation run against the simulated Internet.
//!
//! Sends are fallible: a transport may refuse a frame transiently
//! ([`SendError::WouldBlock`], the simulator's EAGAIN), and the engine is
//! responsible for retrying with backoff.
//!
//! * [`SimTransport`] — couples a scanner to a shared
//!   [`zmap_netsim::World`]; time is virtual and owned by the scanner.
//! * [`LoopbackTransport`] — frames sent are scripted/inspected directly
//!   (engine unit tests); send failures can be scripted per attempt.

use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;
use zmap_netsim::{EndpointId, SendError, World, WorldConfig};

/// A reusable pool of rendered frames awaiting one batched send — the
/// engine-side model of a `sendmmsg` iovec array.
///
/// Each slot holds `(scheduled send time, engine tag, frame buffer)`.
/// Buffers are recycled across [`clear`](Self::clear) calls, so after
/// the first fill the TX hot path performs zero allocations: the engine
/// renders each probe straight into [`slot`](Self::slot) with
/// `ProbeTemplate::render_into`.
///
/// The tag is engine-defined bookkeeping carried alongside the frame
/// (the single-threaded engine stores its target count, the parallel
/// engine its walk position) so a partially accepted batch can roll
/// progress back to exactly the frames that left the NIC.
pub struct FrameBatch {
    slots: Vec<(u64, u64, Vec<u8>)>,
    len: usize,
    capacity: usize,
}

impl FrameBatch {
    /// An empty batch that flushes when `capacity` frames are queued.
    ///
    /// # Panics
    /// Panics if `capacity` is 0.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "batch capacity must be positive");
        FrameBatch {
            slots: Vec::with_capacity(capacity),
            len: 0,
            capacity,
        }
    }

    /// Queued frame count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True once the batch holds `capacity` frames and must be flushed.
    pub fn is_full(&self) -> bool {
        self.len >= self.capacity
    }

    /// Flush threshold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Grants the next slot's (cleared, capacity-retaining) buffer,
    /// scheduled at `at_ns` and tagged `tag`; render the frame into it.
    pub fn slot(&mut self, at_ns: u64, tag: u64) -> &mut Vec<u8> {
        let buf = self.reserve(at_ns, tag);
        buf.clear();
        buf
    }

    /// Like [`Self::slot`], but the recycled buffer keeps its previous
    /// contents. The staged template fill uses this so
    /// `ProbeTemplate::render_with` can recognise a prior render of the
    /// same template and patch it in place instead of re-copying the
    /// frame. Callers must overwrite (or clear) the buffer before flush.
    pub fn reserve(&mut self, at_ns: u64, tag: u64) -> &mut Vec<u8> {
        if self.len == self.slots.len() {
            self.slots.push((at_ns, tag, Vec::new()));
        } else {
            self.slots[self.len].0 = at_ns;
            self.slots[self.len].1 = tag;
        }
        let buf = &mut self.slots[self.len].2;
        self.len += 1;
        buf
    }

    /// Scheduled time and frame bytes of slot `i` (`i < len`).
    pub fn frame(&self, i: usize) -> (u64, &[u8]) {
        let (at, _, buf) = &self.slots[i];
        (*at, buf.as_slice())
    }

    /// Engine tag of slot `i` (`i < len`).
    pub fn tag(&self, i: usize) -> u64 {
        self.slots[i].1
    }

    /// Mutable access to slot `i`'s frame buffer (`i < len`) — the
    /// staged-render fill path writes frames here after reserving slots.
    pub fn frame_mut(&mut self, i: usize) -> &mut Vec<u8> {
        assert!(i < self.len, "frame_mut past batch length");
        &mut self.slots[i].2
    }

    /// Scheduled time of the first queued frame (`None` when empty).
    pub fn first_at(&self) -> Option<u64> {
        (self.len > 0).then(|| self.slots[0].0)
    }

    /// Scheduled time of the last queued frame (`None` when empty).
    pub fn last_at(&self) -> Option<u64> {
        (self.len > 0).then(|| self.slots[self.len - 1].0)
    }

    /// Virtual span the batch covers: last scheduled slot minus first
    /// (0 when empty or single-frame). Slots are reserved in paced order,
    /// so this is the time the rate controller spread the batch across.
    pub fn span_ns(&self) -> u64 {
        match (self.first_at(), self.last_at()) {
            (Some(a), Some(b)) => b.saturating_sub(a),
            _ => 0,
        }
    }

    /// Empties the batch, keeping every buffer's allocation for reuse.
    pub fn clear(&mut self) {
        self.len = 0;
    }
}

/// A scanner's view of the network.
pub trait Transport {
    /// Current time in nanoseconds. Virtual for simulations.
    fn now(&self) -> u64;

    /// Advances the clock to `t` (no-op if `t` is in the past).
    fn advance_to(&mut self, t: u64);

    /// Emits one frame at the current time. `Err(WouldBlock)` means the
    /// frame was not sent and the caller may retry after a backoff.
    #[must_use = "an unchecked send error is a silently lost probe"]
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), SendError>;

    /// Emits frames `from_idx..` of `batch` in one call (`sendmmsg`),
    /// advancing the clock through each frame's scheduled time. Returns
    /// how many frames were accepted before the first refusal, plus the
    /// refusal itself, if any — the caller retries or abandons the frame
    /// at `from_idx + accepted` and re-enters with the rest.
    ///
    /// The default implementation loops [`send_frame`](Self::send_frame);
    /// batching transports override it to pay their per-call cost (a
    /// syscall, a lock) once per batch instead of once per frame.
    #[must_use = "an unchecked send error is a silently lost probe"]
    fn send_batch(&mut self, batch: &FrameBatch, from_idx: usize) -> (usize, Option<SendError>) {
        let mut accepted = 0usize;
        for i in from_idx..batch.len() {
            let (at, frame) = batch.frame(i);
            self.advance_to(at);
            match self.send_frame(frame) {
                Ok(()) => accepted += 1,
                Err(e) => return (accepted, Some(e)),
            }
        }
        (accepted, None)
    }

    /// All frames received up to the current time, with receive
    /// timestamps.
    fn recv_frames(&mut self) -> Vec<(u64, Vec<u8>)>;

    /// Timestamp of the next pending inbound frame, if the transport can
    /// know it (lets the engine fast-forward through idle cooldown).
    fn next_rx_at(&self) -> Option<u64> {
        None
    }

    /// True once the scanning process has been declared dead by a fault
    /// schedule. Engines poll this on the receive path so a kill can land
    /// mid-cooldown, where no sends occur. Real transports never die this
    /// way; only simulations script it.
    fn killed(&self) -> bool {
        false
    }
}

/// A shared simulated Internet that multiple scanner transports attach to.
///
/// Cloning the handle is cheap; all clones refer to one world.
#[derive(Clone)]
pub struct SimNet {
    world: Rc<RefCell<World>>,
}

impl SimNet {
    /// Builds a world from config.
    pub fn new(cfg: WorldConfig) -> Self {
        SimNet {
            world: Rc::new(RefCell::new(World::new(cfg))),
        }
    }

    /// Attaches a scanner endpoint at `ip` and returns its transport.
    pub fn transport(&self, ip: Ipv4Addr) -> SimTransport {
        let ep = self.world.borrow_mut().attach(ip);
        SimTransport {
            world: self.world.clone(),
            ep,
            now: 0,
        }
    }

    /// Access the underlying world (stats, darknet captures).
    pub fn with_world<R>(&self, f: impl FnOnce(&mut World) -> R) -> R {
        f(&mut self.world.borrow_mut())
    }
}

/// Transport backed by a [`SimNet`].
pub struct SimTransport {
    world: Rc<RefCell<World>>,
    ep: EndpointId,
    now: u64,
}

impl Transport for SimTransport {
    fn now(&self) -> u64 {
        self.now
    }

    fn advance_to(&mut self, t: u64) {
        if t > self.now {
            self.now = t;
        }
    }

    fn send_frame(&mut self, frame: &[u8]) -> Result<(), SendError> {
        self.world.borrow_mut().send(self.ep, frame, self.now)
    }

    /// One world borrow for the whole batch — the simulator's analogue
    /// of collapsing per-packet `sendto` syscalls into one `sendmmsg`.
    fn send_batch(&mut self, batch: &FrameBatch, from_idx: usize) -> (usize, Option<SendError>) {
        let mut world = self.world.borrow_mut();
        let mut accepted = 0usize;
        for i in from_idx..batch.len() {
            let (at, frame) = batch.frame(i);
            if at > self.now {
                self.now = at;
            }
            match world.send(self.ep, frame, self.now) {
                Ok(()) => accepted += 1,
                Err(e) => return (accepted, Some(e)),
            }
        }
        (accepted, None)
    }

    fn recv_frames(&mut self) -> Vec<(u64, Vec<u8>)> {
        self.world.borrow_mut().recv_ready(self.ep, self.now)
    }

    fn next_rx_at(&self) -> Option<u64> {
        self.world.borrow().next_event_at()
    }

    fn killed(&self) -> bool {
        self.world.borrow().kill_fired()
    }
}

/// In-memory transport for engine unit tests: records what the engine
/// sends; tests push frames to be received and may script send failures.
#[derive(Default)]
pub struct LoopbackTransport {
    now: u64,
    /// Frames the engine sent, with send timestamps.
    pub sent: Vec<(u64, Vec<u8>)>,
    /// Frames queued for the engine, with receive timestamps.
    pub inbox: Vec<(u64, Vec<u8>)>,
    /// Attempt numbers (0-based, counting every `send_frame` call) that
    /// fail with `WouldBlock` — scripts EAGAIN bursts for retry tests.
    pub fail_attempts: Vec<u64>,
    attempts: u64,
}

impl LoopbackTransport {
    /// An empty loopback transport at t=0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Transport for LoopbackTransport {
    fn now(&self) -> u64 {
        self.now
    }

    fn advance_to(&mut self, t: u64) {
        if t > self.now {
            self.now = t;
        }
    }

    fn send_frame(&mut self, frame: &[u8]) -> Result<(), SendError> {
        let attempt = self.attempts;
        self.attempts += 1;
        if self.fail_attempts.contains(&attempt) {
            return Err(SendError::WouldBlock);
        }
        self.sent.push((self.now, frame.to_vec()));
        Ok(())
    }

    fn recv_frames(&mut self) -> Vec<(u64, Vec<u8>)> {
        let now = self.now;
        let (ready, later): (Vec<_>, Vec<_>) =
            self.inbox.drain(..).partition(|&(t, _)| t <= now);
        self.inbox = later;
        ready
    }

    fn next_rx_at(&self) -> Option<u64> {
        self.inbox.iter().map(|&(t, _)| t).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_span_tracks_first_and_last_slots() {
        let mut b = FrameBatch::new(4);
        assert_eq!(b.first_at(), None);
        assert_eq!(b.span_ns(), 0);
        b.reserve(1_000, 1).extend_from_slice(b"a");
        assert_eq!(b.span_ns(), 0, "single frame spans nothing");
        b.reserve(4_500, 2).extend_from_slice(b"b");
        b.reserve(9_000, 3).extend_from_slice(b"c");
        assert_eq!(b.first_at(), Some(1_000));
        assert_eq!(b.last_at(), Some(9_000));
        assert_eq!(b.span_ns(), 8_000);
        b.clear();
        assert_eq!(b.last_at(), None);
        assert_eq!(b.span_ns(), 0);
    }

    #[test]
    fn loopback_clock_is_monotone() {
        let mut t = LoopbackTransport::new();
        t.advance_to(100);
        t.advance_to(50); // ignored
        assert_eq!(t.now(), 100);
    }

    #[test]
    fn loopback_delivers_by_time() {
        let mut t = LoopbackTransport::new();
        t.inbox.push((100, vec![1]));
        t.inbox.push((200, vec![2]));
        t.advance_to(150);
        let got = t.recv_frames();
        assert_eq!(got, vec![(100, vec![1])]);
        assert_eq!(t.next_rx_at(), Some(200));
        t.advance_to(200);
        assert_eq!(t.recv_frames().len(), 1);
    }

    #[test]
    fn loopback_scripts_send_failures() {
        let mut t = LoopbackTransport::new();
        t.fail_attempts = vec![0, 2];
        assert_eq!(t.send_frame(&[1]), Err(SendError::WouldBlock));
        assert_eq!(t.send_frame(&[2]), Ok(()));
        assert_eq!(t.send_frame(&[3]), Err(SendError::WouldBlock));
        assert_eq!(t.send_frame(&[3]), Ok(()));
        let frames: Vec<u8> = t.sent.iter().map(|(_, f)| f[0]).collect();
        assert_eq!(frames, vec![2, 3], "failed attempts record nothing");
    }

    #[test]
    fn sim_transport_roundtrip() {
        use zmap_netsim::{loss::LossModel, ServiceModel};
        use zmap_wire::probe::ProbeBuilder;
        let net = SimNet::new(WorldConfig {
            model: ServiceModel::dense(&[80]),
            loss: LossModel::NONE,
            ..WorldConfig::default()
        });
        let src = Ipv4Addr::new(192, 0, 2, 5);
        let mut t = net.transport(src);
        let b = ProbeBuilder::new(src, 7);
        t.send_frame(&b.tcp_syn(Ipv4Addr::new(7, 7, 7, 7), 80, 0)).unwrap();
        assert!(t.recv_frames().is_empty(), "response takes RTT");
        let rx_at = t.next_rx_at().expect("scheduled");
        t.advance_to(rx_at);
        let frames = t.recv_frames();
        assert_eq!(frames.len(), 1);
        assert!(b.parse_response(&frames[0].1).unwrap().is_some());
        assert_eq!(net.with_world(|w| w.stats().frames_sent), 1);
    }

    #[test]
    fn frame_batch_recycles_buffers_without_stale_bytes() {
        let mut b = FrameBatch::new(2);
        assert!(b.is_empty());
        b.slot(10, 1).extend_from_slice(&[1, 2, 3, 4]);
        b.slot(20, 2).extend_from_slice(&[5]);
        assert!(b.is_full());
        assert_eq!(b.frame(0), (10, &[1, 2, 3, 4][..]));
        assert_eq!(b.frame(1), (20, &[5][..]));
        assert_eq!((b.tag(0), b.tag(1)), (1, 2));
        b.clear();
        assert!(b.is_empty());
        // The recycled slot must not leak the previous frame's tail.
        b.slot(30, 3).extend_from_slice(&[9]);
        assert_eq!(b.frame(0), (30, &[9][..]));
        assert_eq!(b.tag(0), 3);
    }

    #[test]
    #[should_panic(expected = "batch capacity must be positive")]
    fn zero_capacity_batch_panics() {
        FrameBatch::new(0);
    }

    #[test]
    fn default_send_batch_paces_and_stops_at_refusal() {
        let mut t = LoopbackTransport::new();
        t.fail_attempts = vec![2]; // third send_frame call refuses
        let mut batch = FrameBatch::new(4);
        for i in 0..4u64 {
            batch.slot(i * 1000, i).push(i as u8);
        }
        let (n, err) = t.send_batch(&batch, 0);
        assert_eq!(n, 2);
        assert_eq!(err, Some(SendError::WouldBlock));
        assert_eq!(t.now(), 2000, "clock stops at the refused frame's slot");
        // Re-enter at the refused frame: the retry succeeds.
        let (n2, err2) = t.send_batch(&batch, 2);
        assert_eq!((n2, err2), (2, None));
        let sent: Vec<(u64, u8)> = t.sent.iter().map(|(at, f)| (*at, f[0])).collect();
        assert_eq!(sent, vec![(0, 0), (1000, 1), (2000, 2), (3000, 3)]);
    }

    #[test]
    fn sim_send_batch_matches_single_sends() {
        use zmap_netsim::{loss::LossModel, ServiceModel};
        use zmap_wire::probe::ProbeBuilder;
        let world_cfg = || WorldConfig {
            model: ServiceModel::dense(&[80]),
            loss: LossModel::NONE,
            ..WorldConfig::default()
        };
        let src = Ipv4Addr::new(192, 0, 2, 5);
        let b = ProbeBuilder::new(src, 7);
        let mut batch = FrameBatch::new(32);
        for i in 0..32u32 {
            let frame = b.tcp_syn(Ipv4Addr::from(0x0700_0000 + i * 131), 80, i as u16);
            batch.slot(u64::from(i) * 10_000, u64::from(i)).extend_from_slice(&frame);
        }

        let net_a = SimNet::new(world_cfg());
        let mut ta = net_a.transport(src);
        let (n, err) = ta.send_batch(&batch, 0);
        assert_eq!((n, err), (32, None));
        assert_eq!(ta.now(), 31 * 10_000);
        ta.advance_to(1 << 42);
        let batched = ta.recv_frames();

        let net_b = SimNet::new(world_cfg());
        let mut tb = net_b.transport(src);
        for i in 0..batch.len() {
            let (at, frame) = batch.frame(i);
            tb.advance_to(at);
            tb.send_frame(frame).unwrap();
        }
        tb.advance_to(1 << 42);
        assert_eq!(batched, tb.recv_frames(), "delivery must be path-independent");
    }

    #[test]
    fn two_transports_share_one_world() {
        let net = SimNet::new(WorldConfig::default());
        let _a = net.transport(Ipv4Addr::new(1, 1, 1, 1));
        let _b = net.transport(Ipv4Addr::new(2, 2, 2, 2));
        assert_eq!(net.with_world(|w| w.stats().frames_sent), 0);
    }
}
