//! The scan-wide metrics registry: the engines' single store for
//! counters, latency histograms, the event trace, and the probe
//! in-flight tracker that turns response arrivals into RTT samples.
//!
//! Both engines create one [`ScanMetrics`] per run and route *every*
//! counter increment through it (the [`Monitor`](crate::monitor::Monitor)
//! and the checkpoint journal are consumers of this registry, not
//! parallel books). The single-threaded engine uses one shard; the
//! parallel engine gives each send thread its own shard plus one for the
//! receive loop, so the hot path is an uncontended atomic add either way.
//!
//! All recorded durations are virtual-clock values handed in by the
//! engines, and every aggregate is order-independent (sums, min/max,
//! sorted trace), so two same-seed runs produce byte-identical
//! snapshots — the determinism contract CI enforces.

use crate::metadata::Counters;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use zmap_metrics::{CounterBank, MetricsSnapshot, SharedHistogram, TraceRing};

/// Index of each [`Counters`] field in the registry's counter bank.
/// Kept in the declaration order of the struct; `counters()` maps the
/// bank back into the struct by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum CounterId {
    TargetsTotal = 0,
    Sent,
    ResponsesValidated,
    ResponsesDiscarded,
    DuplicatesSuppressed,
    UniqueSuccesses,
    UniqueFailures,
    SendRetries,
    SendtoFailures,
    ResponsesCorrupted,
    LockPoisonRecoveries,
    CheckpointsWritten,
    ResumeCount,
    WatchdogStalls,
    ShutdownClean,
    JobsAdmitted,
    WorkerRestarts,
    JobsDegraded,
    Migrations,
}

/// Number of counters in the bank (one per `Counters` field).
pub const COUNTER_WIDTH: usize = 19;

/// The engine latency histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum HistId {
    /// Probe send (scheduled slot time) → validated response arrival.
    ProbeRtt = 0,
    /// Virtual span of one batch flush: last scheduled slot minus first,
    /// plus any retry backoff the flush accrued.
    BatchFlush,
    /// Serialized size of each checkpoint journal write, in bytes (a
    /// deterministic proxy — wall-clock write time would not replay).
    CheckpointWrite,
    /// Virtual time from cooldown entry to the last drained event.
    CooldownDrain,
    /// Supervisor restart backoff: the virtual delay imposed before a
    /// dead worker's task is requeued (empty outside supervised runs).
    RestartBackoff,
}

const HIST_NAMES: [&str; 5] = [
    "probe_rtt_ns",
    "batch_flush_ns",
    "checkpoint_write_bytes",
    "cooldown_drain_ns",
    "restart_backoff_ns",
];

/// Splitmix64 finalizer for the tracker maps. The keys are already
/// well-mixed `target_key` packings, and `note`/`take` run once per
/// probe on the TX hot path — std's default SipHash costs more there
/// than the map operation itself. Not DoS-resistant, which is fine:
/// keys come from the scan's own permutation, not from the network.
#[derive(Clone, Copy, Default)]
struct KeyHasher(u64);

impl std::hash::Hasher for KeyHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        let mut z = n.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = z ^ (z >> 31);
    }
}

type KeyMap = HashMap<u64, u64, std::hash::BuildHasherDefault<KeyHasher>>;

/// In-flight probe tracker: `target key → scheduled send time`, sharded
/// by key hash so sender inserts and receive-loop takes contend only
/// within a shard. Bounded: a full shard drops new inserts (counted), so
/// memory never exceeds `SHARDS × PER_SHARD_CAP` entries even if nothing
/// ever answers.
struct InflightClock {
    shards: Vec<Mutex<KeyMap>>,
    // [atomics] overflow: Relaxed counter of dropped inserts; summed at
    // snapshot time after the scan quiesces, so no ordering is needed.
    overflow: AtomicU64,
}

const INFLIGHT_SHARDS: usize = 16;
const INFLIGHT_PER_SHARD_CAP: usize = 1 << 16;

impl InflightClock {
    fn new() -> Self {
        InflightClock {
            shards: (0..INFLIGHT_SHARDS).map(|_| Mutex::new(KeyMap::default())).collect(),
            overflow: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<KeyMap> {
        // Multiplicative hash spreads the (ip, port) packing across
        // shards; the low bits of raw keys are port bits and cluster.
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 60;
        &self.shards[(h as usize) % INFLIGHT_SHARDS]
    }

    /// Records `key`'s first scheduled send time (later probes to the
    /// same target keep the first stamp).
    fn note(&self, key: u64, t_ns: u64) {
        let mut g = self.shard(key).lock().unwrap_or_else(|p| p.into_inner());
        if g.len() < INFLIGHT_PER_SHARD_CAP {
            // Common case: one probe → one lookup on the TX hot path.
            g.entry(key).or_insert(t_ns);
        } else if !g.contains_key(&key) {
            self.overflow.fetch_add(1, Ordering::Relaxed);
        }
        // At cap with the key present: first stamp wins, nothing to do.
    }

    /// Takes `key`'s send time; the first response wins, duplicates get
    /// `None`.
    fn take(&self, key: u64) -> Option<u64> {
        self.shard(key)
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .remove(&key)
    }
}

/// The per-scan metrics registry. Shareable across threads by reference
/// (the parallel engine hands `&ScanMetrics` to its scoped senders).
pub struct ScanMetrics {
    /// Counters carried over from a resume journal; added to every
    /// snapshot, never written after construction.
    baseline: Counters,
    bank: CounterBank,
    hists: [SharedHistogram; 5],
    trace: TraceRing,
    inflight: InflightClock,
}

/// Retained trace events. Generous for real scans (tens of events);
/// bounded against pathological fault schedules.
const TRACE_CAP: usize = 256;

impl ScanMetrics {
    /// A registry with `shards` counter/histogram write lanes, seeded
    /// with `baseline` (the resume journal's cumulative counters, or
    /// default for a fresh scan).
    pub fn new(shards: usize, baseline: Counters) -> Self {
        let shards = shards.max(1);
        ScanMetrics {
            baseline,
            bank: CounterBank::new(shards, COUNTER_WIDTH),
            hists: [
                SharedHistogram::new(shards),
                SharedHistogram::new(shards),
                SharedHistogram::new(shards),
                SharedHistogram::new(shards),
                SharedHistogram::new(shards),
            ],
            trace: TraceRing::new(TRACE_CAP),
            inflight: InflightClock::new(),
        }
    }

    /// Adds `n` to a counter in shard 0 (single-threaded engine).
    #[inline]
    pub fn add(&self, id: CounterId, n: u64) {
        self.bank.add(0, id as usize, n);
    }

    /// Adds `n` to a counter in `shard` (parallel engine: each send
    /// thread passes its own index, the receive loop passes
    /// [`rx_shard`](Self::rx_shard)).
    #[inline]
    pub fn add_at(&self, shard: usize, id: CounterId, n: u64) {
        self.bank.add(shard, id as usize, n);
    }

    /// Overwrites a counter's shard-0 lane so the registry total
    /// (baseline + lanes) equals the absolute value `v`. Single-writer
    /// counters only (`targets_total` rollback after a mid-batch kill).
    #[inline]
    pub fn store_absolute(&self, id: CounterId, v: u64) {
        let base = counter_field(&self.baseline, id);
        self.bank.store(0, id as usize, v.saturating_sub(base));
    }

    /// Overwrites a counter's lane in `shard` with the attempt-local
    /// value `v` (receive loop mirroring the transport's cumulative
    /// poison-recovery count).
    #[inline]
    pub fn store_at(&self, shard: usize, id: CounterId, v: u64) {
        self.bank.store(shard, id as usize, v);
    }

    /// Current total of one counter (baseline + all shards).
    #[inline]
    pub fn get(&self, id: CounterId) -> u64 {
        counter_field(&self.baseline, id) + self.bank.sum(id as usize)
    }

    /// The shard index reserved for the receive loop in a parallel run
    /// constructed with `new(threads + 1, …)`.
    pub fn rx_shard(&self) -> usize {
        self.bank.shards() - 1
    }

    /// A consistent-enough snapshot of every counter: exact once writers
    /// have quiesced; during a parallel scan each field is individually
    /// atomic (same contract as the previous ad-hoc atomics).
    pub fn counters(&self) -> Counters {
        let t = self.bank.totals();
        let b = &self.baseline;
        Counters {
            targets_total: b.targets_total + t[CounterId::TargetsTotal as usize],
            sent: b.sent + t[CounterId::Sent as usize],
            responses_validated: b.responses_validated + t[CounterId::ResponsesValidated as usize],
            responses_discarded: b.responses_discarded + t[CounterId::ResponsesDiscarded as usize],
            duplicates_suppressed: b.duplicates_suppressed
                + t[CounterId::DuplicatesSuppressed as usize],
            unique_successes: b.unique_successes + t[CounterId::UniqueSuccesses as usize],
            unique_failures: b.unique_failures + t[CounterId::UniqueFailures as usize],
            send_retries: b.send_retries + t[CounterId::SendRetries as usize],
            sendto_failures: b.sendto_failures + t[CounterId::SendtoFailures as usize],
            responses_corrupted: b.responses_corrupted + t[CounterId::ResponsesCorrupted as usize],
            lock_poison_recoveries: b.lock_poison_recoveries
                + t[CounterId::LockPoisonRecoveries as usize],
            checkpoints_written: b.checkpoints_written + t[CounterId::CheckpointsWritten as usize],
            resume_count: b.resume_count + t[CounterId::ResumeCount as usize],
            watchdog_stalls: b.watchdog_stalls + t[CounterId::WatchdogStalls as usize],
            shutdown_clean: b.shutdown_clean + t[CounterId::ShutdownClean as usize],
            jobs_admitted: b.jobs_admitted + t[CounterId::JobsAdmitted as usize],
            worker_restarts: b.worker_restarts + t[CounterId::WorkerRestarts as usize],
            jobs_degraded: b.jobs_degraded + t[CounterId::JobsDegraded as usize],
            migrations: b.migrations + t[CounterId::Migrations as usize],
        }
    }

    /// Records a histogram value into shard 0.
    #[inline]
    pub fn record(&self, id: HistId, v: u64) {
        self.hists[id as usize].record(0, v);
    }

    /// Records a histogram value into `shard`.
    #[inline]
    pub fn record_at(&self, shard: usize, id: HistId, v: u64) {
        self.hists[id as usize].record(shard, v);
    }

    /// Appends a trace event (virtual time relative to scan start).
    pub fn trace(&self, t_ns: u64, kind: &'static str, detail: u64) {
        self.trace.push(t_ns, kind, detail);
    }

    /// Stamps a probe's scheduled send time for RTT tracking. `key` is
    /// the `zmap_dedup::target_key` packing of `(ip, port)`.
    #[inline]
    pub fn note_probe(&self, key: u64, t_ns: u64) {
        self.inflight.note(key, t_ns);
    }

    /// Resolves a validated response against the in-flight tracker and
    /// records the RTT into `shard`. Duplicate responses find nothing
    /// and record nothing.
    #[inline]
    pub fn record_rtt(&self, shard: usize, key: u64, arrival_ns: u64) {
        if let Some(sent_at) = self.inflight.take(key) {
            self.hists[HistId::ProbeRtt as usize]
                .record(shard, arrival_ns.saturating_sub(sent_at));
        }
    }

    /// The full serializable dump: histograms by name, sorted trace, and
    /// the in-flight overflow count.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot {
            trace: self.trace.snapshot(),
            inflight_overflow: self.inflight.overflow.load(Ordering::Relaxed),
            ..MetricsSnapshot::default()
        };
        for (i, name) in HIST_NAMES.iter().enumerate() {
            snap.histograms
                .insert((*name).to_string(), self.hists[i].merged().snapshot());
        }
        snap
    }
}

/// Reads one field of a [`Counters`] by id.
fn counter_field(c: &Counters, id: CounterId) -> u64 {
    match id {
        CounterId::TargetsTotal => c.targets_total,
        CounterId::Sent => c.sent,
        CounterId::ResponsesValidated => c.responses_validated,
        CounterId::ResponsesDiscarded => c.responses_discarded,
        CounterId::DuplicatesSuppressed => c.duplicates_suppressed,
        CounterId::UniqueSuccesses => c.unique_successes,
        CounterId::UniqueFailures => c.unique_failures,
        CounterId::SendRetries => c.send_retries,
        CounterId::SendtoFailures => c.sendto_failures,
        CounterId::ResponsesCorrupted => c.responses_corrupted,
        CounterId::LockPoisonRecoveries => c.lock_poison_recoveries,
        CounterId::CheckpointsWritten => c.checkpoints_written,
        CounterId::ResumeCount => c.resume_count,
        CounterId::WatchdogStalls => c.watchdog_stalls,
        CounterId::ShutdownClean => c.shutdown_clean,
        CounterId::JobsAdmitted => c.jobs_admitted,
        CounterId::WorkerRestarts => c.worker_restarts,
        CounterId::JobsDegraded => c.jobs_degraded,
        CounterId::Migrations => c.migrations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_round_trip_through_the_bank() {
        let m = ScanMetrics::new(1, Counters::default());
        m.add(CounterId::Sent, 10);
        m.add(CounterId::UniqueSuccesses, 3);
        m.add(CounterId::Sent, 5);
        let c = m.counters();
        assert_eq!(c.sent, 15);
        assert_eq!(c.unique_successes, 3);
        assert_eq!(c.targets_total, 0);
        assert_eq!(m.get(CounterId::Sent), 15);
    }

    #[test]
    fn baseline_is_added_to_every_snapshot() {
        let baseline = Counters {
            sent: 100,
            resume_count: 1,
            ..Counters::default()
        };
        let m = ScanMetrics::new(2, baseline);
        m.add_at(0, CounterId::Sent, 7);
        m.add_at(1, CounterId::Sent, 3);
        assert_eq!(m.counters().sent, 110);
        assert_eq!(m.counters().resume_count, 1);
    }

    #[test]
    fn store_absolute_rolls_a_counter_back() {
        let baseline = Counters {
            targets_total: 50,
            ..Counters::default()
        };
        let m = ScanMetrics::new(1, baseline);
        m.add(CounterId::TargetsTotal, 20);
        assert_eq!(m.get(CounterId::TargetsTotal), 70);
        m.store_absolute(CounterId::TargetsTotal, 63);
        assert_eq!(m.get(CounterId::TargetsTotal), 63);
    }

    #[test]
    fn rtt_tracker_resolves_first_response_only() {
        let m = ScanMetrics::new(1, Counters::default());
        m.note_probe(42, 1_000);
        m.note_probe(42, 2_000); // retransmit keeps the first stamp
        m.record_rtt(0, 42, 51_000);
        m.record_rtt(0, 42, 99_000); // duplicate: no sample
        let snap = m.snapshot();
        let h = &snap.histograms["probe_rtt_ns"];
        assert_eq!(h.count, 1);
        assert_eq!(h.min, 50_000);
        assert_eq!(h.max, 50_000);
    }

    #[test]
    fn snapshot_names_every_histogram() {
        let m = ScanMetrics::new(1, Counters::default());
        m.record(HistId::BatchFlush, 10);
        m.record(HistId::CheckpointWrite, 512);
        m.record(HistId::CooldownDrain, 1_000_000_000);
        let snap = m.snapshot();
        for name in [
            "probe_rtt_ns",
            "batch_flush_ns",
            "checkpoint_write_bytes",
            "cooldown_drain_ns",
            "restart_backoff_ns",
        ] {
            assert!(snap.histograms.contains_key(name), "missing {name}");
        }
        assert_eq!(snap.histograms["batch_flush_ns"].count, 1);
        assert_eq!(snap.inflight_overflow, 0);
    }

    #[test]
    fn trace_events_arrive_sorted() {
        let m = ScanMetrics::new(1, Counters::default());
        m.trace(500, "cooldown_start", 0);
        m.trace(0, "scan_start", 64);
        let t = m.snapshot().trace;
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.events[0].kind, "scan_start");
        assert_eq!(t.events[0].detail, 64);
        assert_eq!(t.events[1].kind, "cooldown_start");
    }
}
