//! Scanner-side send-rate control.
//!
//! ZMap paces probes with batched sleeps (checking the clock every B
//! packets); at 1–10 GbE rates the batch send loop is the hot path. In
//! the simulator the "clock" is virtual, so the pacer's job is simply to
//! hand the engine the timestamp at which probe *i* should leave — an
//! exact, drift-free schedule (ZMap's original looping sleep logic
//! accumulated drift, later fixed by anchoring to scan start, which is
//! the behavior we implement).

/// A drift-free probe schedule: probe `i` departs at `start + i/rate`.
///
/// For multi-threaded engines, [`new_interleaved`](Self::new_interleaved)
/// assigns each sender every `stride`-th slot of the *global* schedule,
/// so N cooperating controllers reproduce the aggregate rate exactly —
/// no per-thread rounding, no dropped remainder, and rates below the
/// thread count still pace correctly.
#[derive(Debug, Clone, Copy)]
pub struct RateController {
    start_ns: u64,
    /// Denominator of the exact `1e9 / rate` interval (the rate in pps).
    interval_den: u64,
    sent: u64,
    /// `floor(slot · num / den)` for the *next* slot, carried
    /// incrementally so the hot path never divides: a 128-bit division
    /// per probe costs more than the whole frame render.
    next_offset: u64,
    /// `slot · num mod den` for the next slot (the Bresenham error term
    /// that keeps the incremental offset exactly equal to the closed
    /// form).
    next_rem: u64,
    /// Whole nanoseconds the offset advances per probe.
    step_whole: u64,
    /// Fractional advance per probe, in units of `1/den` ns.
    step_rem: u64,
}

impl RateController {
    /// A controller for `rate_pps` probes per second starting at
    /// `start_ns`.
    ///
    /// # Panics
    /// Panics if `rate_pps` is 0.
    pub fn new(start_ns: u64, rate_pps: u64) -> Self {
        Self::new_interleaved(start_ns, rate_pps, 0, 1)
    }

    /// A controller whose probe `i` occupies global schedule slot
    /// `base + i * stride`: sender `base` of `stride` cooperating
    /// threads. The union of slots across threads is exactly the
    /// single-sender schedule, so the aggregate rate is conserved for
    /// any thread count — including `rate_pps < stride`, where each
    /// thread simply sends less than one probe per second.
    ///
    /// # Panics
    /// Panics if `rate_pps` or `stride` is 0, or `base >= stride`.
    pub fn new_interleaved(start_ns: u64, rate_pps: u64, base: u64, stride: u64) -> Self {
        assert!(rate_pps > 0, "rate must be positive");
        assert!(stride > 0, "stride must be positive");
        assert!(base < stride, "slot base must be below the stride");
        // interval = 1e9 / rate as an exact rational (num/den ns). The
        // one-time setup divisions run in 128 bits (`slot * 1e9`
        // overflows u64 past ~18e9 slots); after this the schedule
        // advances by exact addition only.
        let num = 1_000_000_000u64;
        let den = rate_pps;
        let first = u128::from(base) * u128::from(num);
        let step = u128::from(stride) * u128::from(num);
        RateController {
            start_ns,
            interval_den: den,
            sent: 0,
            next_offset: (first / u128::from(den)) as u64,
            next_rem: (first % u128::from(den)) as u64,
            step_whole: (step / u128::from(den)) as u64,
            step_rem: (step % u128::from(den)) as u64,
        }
    }

    /// Timestamp at which the next probe departs: exactly
    /// `start + floor((base + sent · stride) · 1e9 / rate)`, read from
    /// the incrementally-carried offset.
    #[inline]
    pub fn next_send_at(&self) -> u64 {
        self.start_ns + self.next_offset
    }

    /// Marks one probe sent and returns its departure time.
    #[inline]
    pub fn mark_sent(&mut self) -> u64 {
        let t = self.start_ns + self.next_offset;
        self.sent += 1;
        // Advance slot by `stride`: add the exact rational step; the
        // error term carries at most one extra whole nanosecond.
        self.next_offset += self.step_whole;
        self.next_rem += self.step_rem;
        if self.next_rem >= self.interval_den {
            self.next_rem -= self.interval_den;
            self.next_offset += 1;
        }
        t
    }

    /// Probes sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Skips `slots` schedule slots without sending, as if that many
    /// probes had already departed. The supervisor's schedule-aligned
    /// resume uses this to re-enter the global schedule at the slot the
    /// interrupted attempt had reached, so a replayed probe leaves at
    /// exactly the virtual time its uninterrupted twin would have.
    ///
    /// Exact for any slot count: the skip is applied to the Bresenham
    /// error term in 128-bit arithmetic, so the post-skip schedule equals
    /// the closed form `start + floor((base + sent · stride) · 1e9 / rate)`
    /// slot for slot.
    pub fn fast_forward(&mut self, slots: u64) {
        let den = u128::from(self.interval_den);
        let carry =
            u128::from(self.next_rem) + u128::from(slots) * u128::from(self.step_rem);
        self.next_offset = self
            .next_offset
            .wrapping_add(slots.wrapping_mul(self.step_whole))
            .wrapping_add((carry / den) as u64);
        self.next_rem = (carry % den) as u64;
        self.sent += slots;
    }

    /// The exact average rate achieved over `n` probes (pps), for tests.
    pub fn achieved_rate(&self, elapsed_ns: u64) -> f64 {
        if elapsed_ns == 0 {
            return 0.0;
        }
        self.sent as f64 * 1e9 / elapsed_ns as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_spacing_at_simple_rates() {
        let mut rc = RateController::new(0, 1000); // 1 kpps = 1 ms spacing
        assert_eq!(rc.mark_sent(), 0);
        assert_eq!(rc.mark_sent(), 1_000_000);
        assert_eq!(rc.mark_sent(), 2_000_000);
    }

    #[test]
    fn no_drift_at_awkward_rates() {
        // 3 pps: intervals of 333333333.33 ns; after 3M probes the
        // schedule must still be exact (i * 1e9 / 3), not accumulated.
        let mut rc = RateController::new(0, 3);
        for _ in 0..3_000_000 {
            rc.mark_sent();
        }
        assert_eq!(rc.next_send_at(), 3_000_000u64 * 1_000_000_000 / 3);
        // Exactly 1e9 seconds of schedule per 3 probes.
        assert_eq!(rc.next_send_at(), 1_000_000_000_000_000);
    }

    #[test]
    fn start_offset_is_respected() {
        let mut rc = RateController::new(500, 1_000_000_000); // 1 Gpps, 1 ns
        assert_eq!(rc.mark_sent(), 500);
        assert_eq!(rc.mark_sent(), 501);
    }

    #[test]
    fn achieved_rate_matches_target() {
        let mut rc = RateController::new(0, 14_880);
        let mut last = 0;
        for _ in 0..14_880 {
            last = rc.mark_sent();
        }
        let rate = rc.achieved_rate(last.max(1));
        assert!((rate - 14_880.0).abs() / 14_880.0 < 0.001, "{rate}");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        RateController::new(0, 0);
    }

    #[test]
    fn fast_forward_matches_marking_each_slot_sent() {
        // Awkward rate so the Bresenham error term is exercised: the
        // skipped controller must land on exactly the schedule the
        // step-by-step controller reaches.
        for skip in [0u64, 1, 2, 6, 999, 1_000_000] {
            let mut stepped = RateController::new(7, 14_880);
            for _ in 0..skip {
                stepped.mark_sent();
            }
            let mut skipped = RateController::new(7, 14_880);
            skipped.fast_forward(skip);
            assert_eq!(skipped.next_send_at(), stepped.next_send_at(), "skip {skip}");
            assert_eq!(skipped.sent(), stepped.sent());
            // And the schedules stay aligned after the skip point.
            assert_eq!(skipped.mark_sent(), stepped.mark_sent());
            assert_eq!(skipped.mark_sent(), stepped.mark_sent());
        }
    }

    /// The timestamps of `threads` interleaved controllers, merged, for
    /// the first `total` probes of the global schedule.
    fn merged_schedule(rate: u64, threads: u64, total: u64) -> Vec<u64> {
        let mut all = Vec::new();
        for t in 0..threads {
            let mut rc = RateController::new_interleaved(0, rate, t, threads);
            // Thread t owns slots t, t+threads, ... below `total`.
            let count = (total - t).div_ceil(threads);
            for _ in 0..count {
                all.push(rc.mark_sent());
            }
        }
        all.sort_unstable();
        all
    }

    #[test]
    fn interleaved_threads_conserve_the_aggregate_rate() {
        // 1000 pps across 7 threads: the old truncating split ran at
        // 7 * 142 = 994 pps. The interleaved schedule must equal the
        // single-sender schedule slot for slot.
        let mut reference = RateController::new(0, 1000);
        let expected: Vec<u64> = (0..10_000).map(|_| reference.mark_sent()).collect();
        assert_eq!(merged_schedule(1000, 7, 10_000), expected);
    }

    #[test]
    fn rates_below_the_thread_count_do_not_inflate() {
        // 3 pps on 7 threads: the old `max(1)` clamp sent 7 pps. Merged,
        // the interleaved schedule is exactly 3 pps.
        let mut reference = RateController::new(0, 3);
        let expected: Vec<u64> = (0..21).map(|_| reference.mark_sent()).collect();
        let got = merged_schedule(3, 7, 21);
        assert_eq!(got, expected);
        // 21 probes at 3 pps: the last departs at t = 20/3 s.
        assert_eq!(*got.last().unwrap(), 20 * 1_000_000_000 / 3);
    }

    #[test]
    fn interleaved_slot_times_use_wide_arithmetic() {
        // Slot 4 * 2^34 at 1 Gpps: slot * 1e9 is ~6.9e19, past u64::MAX.
        // The wide product must still land on the exact schedule (one
        // nanosecond per slot).
        let mut rc = RateController::new_interleaved(0, 1_000_000_000, 0, 1 << 34);
        for _ in 0..4 {
            rc.mark_sent();
        }
        assert_eq!(rc.next_send_at(), 4 << 34);
    }

    #[test]
    #[should_panic(expected = "slot base must be below the stride")]
    fn out_of_range_slot_base_panics() {
        RateController::new_interleaved(0, 100, 4, 4);
    }
}
