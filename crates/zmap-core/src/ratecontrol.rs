//! Scanner-side send-rate control.
//!
//! ZMap paces probes with batched sleeps (checking the clock every B
//! packets); at 1–10 GbE rates the batch send loop is the hot path. In
//! the simulator the "clock" is virtual, so the pacer's job is simply to
//! hand the engine the timestamp at which probe *i* should leave — an
//! exact, drift-free schedule (ZMap's original looping sleep logic
//! accumulated drift, later fixed by anchoring to scan start, which is
//! the behavior we implement).

/// A drift-free probe schedule: probe `i` departs at `start + i/rate`.
#[derive(Debug, Clone, Copy)]
pub struct RateController {
    start_ns: u64,
    interval_num: u64,
    interval_den: u64,
    sent: u64,
}

impl RateController {
    /// A controller for `rate_pps` probes per second starting at
    /// `start_ns`.
    ///
    /// # Panics
    /// Panics if `rate_pps` is 0.
    pub fn new(start_ns: u64, rate_pps: u64) -> Self {
        assert!(rate_pps > 0, "rate must be positive");
        // interval = 1e9 / rate as an exact rational (num/den ns).
        RateController {
            start_ns,
            interval_num: 1_000_000_000,
            interval_den: rate_pps,
            sent: 0,
        }
    }

    /// Timestamp at which the next probe departs.
    pub fn next_send_at(&self) -> u64 {
        self.start_ns + self.sent * self.interval_num / self.interval_den
    }

    /// Marks one probe sent and returns its departure time.
    pub fn mark_sent(&mut self) -> u64 {
        let t = self.next_send_at();
        self.sent += 1;
        t
    }

    /// Probes sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// The exact average rate achieved over `n` probes (pps), for tests.
    pub fn achieved_rate(&self, elapsed_ns: u64) -> f64 {
        if elapsed_ns == 0 {
            return 0.0;
        }
        self.sent as f64 * 1e9 / elapsed_ns as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_spacing_at_simple_rates() {
        let mut rc = RateController::new(0, 1000); // 1 kpps = 1 ms spacing
        assert_eq!(rc.mark_sent(), 0);
        assert_eq!(rc.mark_sent(), 1_000_000);
        assert_eq!(rc.mark_sent(), 2_000_000);
    }

    #[test]
    fn no_drift_at_awkward_rates() {
        // 3 pps: intervals of 333333333.33 ns; after 3M probes the
        // schedule must still be exact (i * 1e9 / 3), not accumulated.
        let mut rc = RateController::new(0, 3);
        for _ in 0..3_000_000 {
            rc.mark_sent();
        }
        assert_eq!(rc.next_send_at(), 3_000_000u64 * 1_000_000_000 / 3);
        // Exactly 1e9 seconds of schedule per 3 probes.
        assert_eq!(rc.next_send_at(), 1_000_000_000_000_000);
    }

    #[test]
    fn start_offset_is_respected() {
        let mut rc = RateController::new(500, 1_000_000_000); // 1 Gpps, 1 ns
        assert_eq!(rc.mark_sent(), 500);
        assert_eq!(rc.mark_sent(), 501);
    }

    #[test]
    fn achieved_rate_matches_target() {
        let mut rc = RateController::new(0, 14_880);
        let mut last = 0;
        for _ in 0..14_880 {
            last = rc.mark_sent();
        }
        let rate = rc.achieved_rate(last.max(1));
        assert!((rate - 14_880.0).abs() / 14_880.0 < 0.001, "{rate}");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        RateController::new(0, 0);
    }
}
