//! Property-based tests over the log2 histogram: the algebraic facts
//! the metrics registry's determinism argument rests on. Shards merge
//! by bucket addition, so the merge must be a commutative monoid and
//! every derived statistic must be a function of the recorded multiset
//! alone — never of recording or merge order.

use proptest::prelude::*;
use zmap_metrics::{bucket_ceil, bucket_floor, bucket_index, Log2Histogram, SharedHistogram, BUCKETS};

fn from_values(values: &[u64]) -> Log2Histogram {
    let mut h = Log2Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Merge is commutative: (a ∪ b) == (b ∪ a), byte for byte.
    #[test]
    fn merge_commutes(
        a in prop::collection::vec(any::<u64>(), 0..40),
        b in prop::collection::vec(any::<u64>(), 0..40),
    ) {
        let (ha, hb) = (from_values(&a), from_values(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab.snapshot(), ba.snapshot());
    }

    /// Merge is associative: (a ∪ b) ∪ c == a ∪ (b ∪ c).
    #[test]
    fn merge_associates(
        a in prop::collection::vec(any::<u64>(), 0..30),
        b in prop::collection::vec(any::<u64>(), 0..30),
        c in prop::collection::vec(any::<u64>(), 0..30),
    ) {
        let (ha, hb, hc) = (from_values(&a), from_values(&b), from_values(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left.snapshot(), right.snapshot());
    }

    /// Splitting a value stream across shards in any pattern and merging
    /// preserves every statistic: the shard assignment (which thread
    /// recorded what) is invisible in the dump.
    #[test]
    fn shard_split_is_invisible(
        values in prop::collection::vec(any::<u64>(), 1..80),
        assign in prop::collection::vec(0usize..4, 1..80),
    ) {
        let sharded = SharedHistogram::new(4);
        for (i, &v) in values.iter().enumerate() {
            sharded.record(assign[i % assign.len()], v);
        }
        let single = from_values(&values);
        prop_assert_eq!(sharded.merged().snapshot(), single.snapshot());
        prop_assert_eq!(sharded.merged().count(), values.len() as u64);
    }

    /// Recording order is invisible: any permutation of the stream
    /// produces the identical histogram.
    #[test]
    fn record_order_is_invisible(values in prop::collection::vec(any::<u64>(), 1..60)) {
        let forward = from_values(&values);
        let mut reversed = values.clone();
        reversed.reverse();
        prop_assert_eq!(forward.snapshot(), from_values(&reversed).snapshot());
    }

    /// Bucketing is monotone and self-consistent: every value lands in
    /// the bucket whose [floor, ceil] range contains it, and bucket
    /// index never decreases as values grow.
    #[test]
    fn bucket_scheme_is_monotone(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < BUCKETS);
        prop_assert!(bucket_floor(i) <= v, "floor({i}) > {v}");
        prop_assert!(v <= bucket_ceil(i), "{v} > ceil({i})");
        if v < u64::MAX {
            prop_assert!(bucket_index(v + 1) >= i);
        }
    }

    /// Quantiles are monotone in q — in particular p99 >= p50 — and
    /// bounded by the recorded extremes' bucket ceilings.
    #[test]
    fn quantiles_are_monotone(values in prop::collection::vec(any::<u64>(), 1..60)) {
        let h = from_values(&values);
        let (p50, p90, p99) = (
            h.quantile_upper(0.50),
            h.quantile_upper(0.90),
            h.quantile_upper(0.99),
        );
        prop_assert!(p50 <= p90, "p50 {p50} > p90 {p90}");
        prop_assert!(p90 <= p99, "p90 {p90} > p99 {p99}");
        let lo = *values.iter().min().expect("non-empty");
        let hi = *values.iter().max().expect("non-empty");
        prop_assert!(p50 >= bucket_floor(bucket_index(lo)));
        prop_assert!(p99 <= bucket_ceil(bucket_index(hi)));
    }

    /// min/max survive any merge tree exactly (not just to the bucket).
    #[test]
    fn merge_preserves_exact_extremes(
        a in prop::collection::vec(any::<u64>(), 1..40),
        b in prop::collection::vec(any::<u64>(), 1..40),
    ) {
        let mut m = from_values(&a);
        m.merge(&from_values(&b));
        let all: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(m.min(), *all.iter().min().expect("non-empty"));
        prop_assert_eq!(m.max(), *all.iter().max().expect("non-empty"));
        prop_assert_eq!(m.count(), all.len() as u64);
    }
}
