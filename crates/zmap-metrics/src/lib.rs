#![forbid(unsafe_code)]
//! Deterministic observability primitives — the substrate behind the
//! engines' metrics registry (`zmap_core::metrics`).
//!
//! Three building blocks, none of which ever consults a wall clock:
//!
//! * [`CounterBank`] — a sharded array of `AtomicU64` counters. Each
//!   send thread owns one shard and increments without contention; a
//!   snapshot sums the shards. Addition commutes, so the totals are
//!   independent of thread interleaving.
//! * [`Log2Histogram`] / [`SharedHistogram`] — fixed-bucket base-2
//!   latency histograms. Bucket `k` covers `[2^(k-1), 2^k)` ns, so the
//!   record path is one `leading_zeros` plus one atomic add — cheap
//!   enough to leave enabled on the TX hot path. Bucket counts are sums
//!   of events, so shard merges are associative and commutative, and a
//!   merged histogram is a pure function of the *set* of recorded
//!   values — never of recording order.
//! * [`TraceRing`] — a bounded ring of virtual-time-stamped events
//!   (phase transitions, watchdog trips, fault activations, resume
//!   rewinds). When full it overwrites the oldest entry and counts the
//!   drop, so a misbehaving scan can never grow the ring without bound.
//!
//! Everything here records *virtual* durations handed in by the caller;
//! combined with the order-independence above, that is the determinism
//! argument (DESIGN.md §5): two runs with the same seed and config
//! produce byte-identical snapshots.

mod counter;
mod hist;
mod trace;

pub use counter::CounterBank;
pub use hist::{
    bucket_ceil, bucket_floor, bucket_index, BucketCount, HistogramSnapshot, Log2Histogram,
    SharedHistogram, BUCKETS,
};
pub use trace::{TraceEvent, TraceEventSnapshot, TraceRing, TraceSnapshot};

use serde::Serialize;
use std::collections::BTreeMap;

/// A complete, serializable dump of a registry: every histogram by name
/// (BTreeMap, so key order — and therefore the serialized bytes — is
/// deterministic), the event trace, and the RTT-tracker overflow count.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct MetricsSnapshot {
    /// Histograms by name (e.g. `probe_rtt_ns`), sorted by key.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// The bounded event trace.
    pub trace: TraceSnapshot,
    /// Probes whose send time could not be tracked because the in-flight
    /// tracker was at capacity (their RTT samples are lost; nonzero
    /// values mark the RTT histogram as a lower bound).
    pub inflight_overflow: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_serializes_deterministically() {
        let mut h = Log2Histogram::new();
        h.record(100);
        h.record(1_000_000);
        let mut snap = MetricsSnapshot::default();
        snap.histograms.insert("zeta".into(), h.snapshot());
        snap.histograms.insert("alpha".into(), h.snapshot());
        let a = serde_json::to_string(&snap).unwrap();
        let b = serde_json::to_string(&snap.clone()).unwrap();
        assert_eq!(a, b);
        // BTreeMap order: alpha before zeta regardless of insert order.
        assert!(a.find("alpha").unwrap() < a.find("zeta").unwrap());
    }
}
