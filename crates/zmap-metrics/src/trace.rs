//! Bounded event-trace ring.

use serde::Serialize;
use std::collections::VecDeque;
use std::sync::Mutex;

/// One traced engine event, stamped on the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time relative to scan start, nanoseconds.
    pub t_ns: u64,
    /// Static event kind (e.g. `cooldown_start`, `watchdog_stall`).
    pub kind: &'static str,
    /// Event-defined payload (a count, a position, an ordinal).
    pub detail: u64,
}

struct RingInner {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

/// A bounded ring of [`TraceEvent`]s. When full, the oldest event is
/// overwritten and the drop is counted — tracing can never grow without
/// bound, and a nonzero drop count flags the snapshot as truncated.
///
/// Events are rare (phase transitions, faults, checkpoints), so a mutex
/// is fine here; the hot paths never push. The snapshot sorts by
/// `(t_ns, kind, detail)` so that events pushed concurrently from racing
/// threads serialize identically as long as the *set* of events is
/// deterministic (see DESIGN.md §5 for the boundary cases).
pub struct TraceRing {
    cap: usize,
    inner: Mutex<RingInner>,
}

impl TraceRing {
    /// A ring holding at most `cap` events (clamped to ≥ 1).
    pub fn new(cap: usize) -> Self {
        TraceRing {
            cap: cap.max(1),
            inner: Mutex::new(RingInner {
                events: VecDeque::new(),
                dropped: 0,
            }),
        }
    }

    /// Maximum retained events.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&self, t_ns: u64, kind: &'static str, detail: u64) {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if g.events.len() == self.cap {
            g.events.pop_front();
            g.dropped += 1;
        }
        g.events.push_back(TraceEvent { t_ns, kind, detail });
    }

    /// Serializable dump, sorted by `(t_ns, kind, detail)`.
    pub fn snapshot(&self) -> TraceSnapshot {
        let g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let mut events: Vec<TraceEventSnapshot> = g
            .events
            .iter()
            .map(|e| TraceEventSnapshot {
                t_ns: e.t_ns,
                kind: e.kind.to_string(),
                detail: e.detail,
            })
            .collect();
        events.sort_by(|a, b| {
            (a.t_ns, a.kind.as_str(), a.detail).cmp(&(b.t_ns, b.kind.as_str(), b.detail))
        });
        TraceSnapshot {
            dropped: g.dropped,
            events,
        }
    }
}

/// One event in a [`TraceSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct TraceEventSnapshot {
    /// Virtual time relative to scan start, nanoseconds.
    pub t_ns: u64,
    /// Event kind.
    pub kind: String,
    /// Event-defined payload.
    pub detail: u64,
}

/// Serializable trace dump.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct TraceSnapshot {
    /// Events evicted because the ring was full.
    pub dropped: u64,
    /// Retained events, sorted by `(t_ns, kind, detail)`.
    pub events: Vec<TraceEventSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let r = TraceRing::new(2);
        r.push(1, "a", 0);
        r.push(2, "b", 0);
        r.push(3, "c", 0);
        let s = r.snapshot();
        assert_eq!(s.dropped, 1);
        let kinds: Vec<&str> = s.events.iter().map(|e| e.kind.as_str()).collect();
        assert_eq!(kinds, vec!["b", "c"]);
    }

    #[test]
    fn snapshot_sorts_by_time_then_kind() {
        let r = TraceRing::new(8);
        r.push(5, "b", 1);
        r.push(1, "z", 0);
        r.push(5, "a", 2);
        let s = r.snapshot();
        let order: Vec<(u64, &str)> =
            s.events.iter().map(|e| (e.t_ns, e.kind.as_str())).collect();
        assert_eq!(order, vec![(1, "z"), (5, "a"), (5, "b")]);
    }
}
