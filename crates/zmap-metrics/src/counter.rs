//! Lock-free sharded counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// A `shards × width` array of `AtomicU64` counters.
///
/// Each writer (a send thread, the receive loop) owns one shard index
/// and increments its own lane without contention; totals are summed
/// across shards at snapshot time. Because addition commutes, totals
/// are independent of thread interleaving — the property the engines
/// rely on for deterministic metrics.
///
/// `store` overwrites a slot in one shard; it is only meaningful for
/// counters with exactly one writer (the single-threaded engine's
/// rollback of `targets_total` after a mid-batch kill, the receive
/// loop's mirror of the transport's poison-recovery count).
pub struct CounterBank {
    width: usize,
    // [atomics] shards: all ops Relaxed — each lane has one writer, sums
    // commute, and snapshots happen after the writers quiesce (join),
    // which supplies the ordering.
    shards: Vec<Vec<AtomicU64>>,
}

impl CounterBank {
    /// A bank of `shards × width` zeroed counters (both clamped to ≥ 1).
    pub fn new(shards: usize, width: usize) -> Self {
        let width = width.max(1);
        CounterBank {
            width,
            shards: (0..shards.max(1))
                .map(|_| (0..width).map(|_| AtomicU64::new(0)).collect())
                .collect(),
        }
    }

    /// Number of write lanes.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Counters per shard.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Adds `n` to counter `idx` in `shard` (both clamped into range).
    #[inline]
    pub fn add(&self, shard: usize, idx: usize, n: u64) {
        self.shards[shard.min(self.shards.len() - 1)][idx.min(self.width - 1)]
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites counter `idx` in `shard`. Single-writer slots only.
    #[inline]
    pub fn store(&self, shard: usize, idx: usize, v: u64) {
        self.shards[shard.min(self.shards.len() - 1)][idx.min(self.width - 1)]
            .store(v, Ordering::Relaxed);
    }

    /// Sum of counter `idx` across all shards.
    pub fn sum(&self, idx: usize) -> u64 {
        let idx = idx.min(self.width - 1);
        self.shards.iter().map(|s| s[idx].load(Ordering::Relaxed)).sum()
    }

    /// All totals, by counter index.
    pub fn totals(&self) -> Vec<u64> {
        (0..self.width).map(|i| self.sum(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adds_sum_across_shards() {
        let b = CounterBank::new(3, 2);
        b.add(0, 0, 5);
        b.add(1, 0, 7);
        b.add(2, 1, 1);
        assert_eq!(b.sum(0), 12);
        assert_eq!(b.sum(1), 1);
        assert_eq!(b.totals(), vec![12, 1]);
    }

    #[test]
    fn store_overwrites_one_shard_only() {
        let b = CounterBank::new(2, 1);
        b.add(0, 0, 10);
        b.add(1, 0, 3);
        b.store(0, 0, 2);
        assert_eq!(b.sum(0), 5, "store replaced shard 0's 10 with 2");
    }

    #[test]
    fn concurrent_adds_are_not_lost() {
        let b = CounterBank::new(4, 1);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let b = &b;
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        b.add(t, 0, 1);
                    }
                });
            }
        });
        assert_eq!(b.sum(0), 40_000);
    }
}
