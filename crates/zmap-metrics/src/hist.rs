//! Fixed-bucket base-2 latency histograms.

use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket count: index 0 holds exact zeros, index `k` (1..=64) holds
/// values in `[2^(k-1), 2^k)` — the full `u64` range with no dynamic
/// allocation and no configuration to disagree about between runs.
pub const BUCKETS: usize = 65;

/// The bucket a value lands in: the number of significant bits.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Smallest value bucket `i` can hold.
#[inline]
pub fn bucket_floor(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Largest value bucket `i` can hold.
#[inline]
pub fn bucket_ceil(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// A plain (single-writer) log2 histogram with exact min/max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; BUCKETS],
    min: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Log2Histogram {
            buckets: [0; BUCKETS],
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count() == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Folds `other` into `self`. Bucket counts add and min/max combine,
    /// so merging is associative, commutative, and count-preserving —
    /// the properties that make sharded recording deterministic.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Upper bound of the bucket containing the `q`-quantile (0 when
    /// empty). `q` is clamped to `[0, 1]`. Exact min/max tighten the
    /// extreme buckets.
    pub fn quantile_upper(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based; ceil without floats going
        // through u64::MAX territory.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_ceil(i).min(self.max);
            }
        }
        self.max
    }

    /// Serializable snapshot (non-empty buckets only).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            min: self.min(),
            max: self.max(),
            p50: self.quantile_upper(0.50),
            p90: self.quantile_upper(0.90),
            p99: self.quantile_upper(0.99),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| BucketCount {
                    floor: bucket_floor(i),
                    count: c,
                })
                .collect(),
        }
    }
}

/// One non-empty bucket in a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct BucketCount {
    /// Smallest value this bucket can hold.
    pub floor: u64,
    /// Recorded values in the bucket.
    pub count: u64,
}

/// Serializable histogram dump with precomputed quantile upper bounds,
/// consumable by experiment binaries without reimplementing the bucket
/// scheme.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct HistogramSnapshot {
    /// Total recorded values.
    pub count: u64,
    /// Exact smallest recorded value (0 when empty).
    pub min: u64,
    /// Exact largest recorded value.
    pub max: u64,
    /// Upper bound of the bucket holding the median.
    pub p50: u64,
    /// Upper bound of the bucket holding the 90th percentile.
    pub p90: u64,
    /// Upper bound of the bucket holding the 99th percentile.
    pub p99: u64,
    /// Non-empty buckets, ascending by floor.
    pub buckets: Vec<BucketCount>,
}

/// One shard of a [`SharedHistogram`]: lock-free bucket adds plus
/// monotone min/max races (fetch_min/fetch_max — order-independent).
struct AtomicShard {
    // [atomics] buckets: Relaxed adds — addition commutes and snapshots
    // run after writers quiesce (the join supplies the ordering).
    buckets: Vec<AtomicU64>,
    // [atomics] min: Relaxed fetch_min — monotone race, any interleaving
    // converges to the same value.
    min: AtomicU64,
    // [atomics] max: Relaxed fetch_max — monotone race, any interleaving
    // converges to the same value.
    max: AtomicU64,
}

impl AtomicShard {
    fn new() -> Self {
        AtomicShard {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// A log2 histogram writable concurrently from many threads: each
/// recorder passes its shard index, so the hot path is one uncontended
/// atomic add. [`merged`](Self::merged) folds the shards into a plain
/// [`Log2Histogram`]; because bucket adds commute, the merged result is
/// independent of thread interleaving.
pub struct SharedHistogram {
    shards: Vec<AtomicShard>,
}

impl SharedHistogram {
    /// A histogram with `shards` independent write lanes (min 1).
    pub fn new(shards: usize) -> Self {
        SharedHistogram {
            shards: (0..shards.max(1)).map(|_| AtomicShard::new()).collect(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Records `v` into `shard` (clamped into range).
    #[inline]
    pub fn record(&self, shard: usize, v: u64) {
        let s = &self.shards[shard.min(self.shards.len() - 1)];
        s.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        s.min.fetch_min(v, Ordering::Relaxed);
        s.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Folds every shard into one plain histogram.
    pub fn merged(&self) -> Log2Histogram {
        let mut out = Log2Histogram::new();
        for s in &self.shards {
            for (i, b) in s.buckets.iter().enumerate() {
                out.buckets[i] += b.load(Ordering::Relaxed);
            }
            out.min = out.min.min(s.min.load(Ordering::Relaxed));
            out.max = out.max.max(s.max.load(Ordering::Relaxed));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_scheme_is_exhaustive_and_monotone() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_floor(i)), i);
            assert_eq!(bucket_index(bucket_ceil(i)), i);
            if i > 0 {
                // Buckets tile the u64 range with no gap and no overlap.
                assert_eq!(bucket_floor(i), bucket_ceil(i - 1) + 1);
            }
        }
    }

    #[test]
    fn record_count_min_max() {
        let mut h = Log2Histogram::new();
        assert_eq!((h.count(), h.min(), h.max()), (0, 0, 0));
        h.record(7);
        h.record(0);
        h.record(1_000_000);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1_000_000);
    }

    #[test]
    fn quantiles_bound_the_data() {
        let mut h = Log2Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile_upper(0.50);
        let p99 = h.quantile_upper(0.99);
        assert!(p50 >= 500, "median upper bound below the median: {p50}");
        assert!(p99 >= p50);
        assert!(p99 <= h.max());
        assert_eq!(h.quantile_upper(1.0), h.max());
    }

    #[test]
    fn shared_histogram_matches_serial_recording() {
        let sh = SharedHistogram::new(4);
        let mut plain = Log2Histogram::new();
        for v in 0..10_000u64 {
            sh.record((v % 4) as usize, v * 31);
            plain.record(v * 31);
        }
        assert_eq!(sh.merged(), plain);
    }

    #[test]
    fn snapshot_carries_only_nonempty_buckets() {
        let mut h = Log2Histogram::new();
        h.record(5);
        h.record(5);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.buckets.len(), 1);
        assert_eq!(s.buckets[0].floor, 4);
        assert_eq!(s.buckets[0].count, 2);
    }
}
