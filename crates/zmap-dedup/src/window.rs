//! The sliding-window deduplicator (ZMap's multiport-era design).
//!
//! Keeps the last `capacity` *distinct* response keys in a FIFO ring with
//! a [`JudySet`] for membership. A repeat inside the window is suppressed;
//! a repeat that arrives after the key has been evicted passes through —
//! that controlled imprecision is the memory/accuracy trade-off Figure 5
//! sweeps. ZMap's default window is 10^6 entries, which empirically
//! removes nearly all duplicates at 1 Gbps scan rates.

use crate::judy::JudySet;
use crate::Deduplicator;
use std::collections::VecDeque;

/// FIFO sliding-window deduplicator.
pub struct SlidingWindow {
    set: JudySet,
    ring: VecDeque<u64>,
    capacity: usize,
    suppressed: u64,
    observed: u64,
}

impl SlidingWindow {
    /// A window remembering the last `capacity` distinct keys.
    ///
    /// # Panics
    /// Panics if `capacity == 0` (a zero window would suppress nothing
    /// and the ring logic assumes at least one slot).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        SlidingWindow {
            set: JudySet::new(),
            ring: VecDeque::with_capacity(capacity.min(1 << 20)),
            capacity,
            suppressed: 0,
            observed: 0,
        }
    }

    /// ZMap's default window of 10^6 entries.
    pub fn with_default_capacity() -> Self {
        Self::new(1_000_000)
    }

    /// Records `key`; returns `true` if fresh (not currently in the
    /// window), `false` if suppressed as a duplicate.
    pub fn check_and_insert(&mut self, key: u64) -> bool {
        self.observed += 1;
        if self.set.contains(key) {
            self.suppressed += 1;
            return false;
        }
        if self.ring.len() == self.capacity {
            // At capacity the ring is non-empty, so this always evicts;
            // written as an if-let so a live scan can never panic here.
            if let Some(oldest) = self.ring.pop_front() {
                self.set.remove(oldest);
            }
        }
        self.set.insert(key);
        self.ring.push_back(key);
        true
    }

    /// Keys currently remembered.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no keys are remembered.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total keys observed (fresh + suppressed).
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Duplicates suppressed so far.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }
}

impl Deduplicator for SlidingWindow {
    fn observe(&mut self, key: u64) -> bool {
        self.check_and_insert(key)
    }

    fn memory_bytes(&self) -> u64 {
        self.set.memory_bytes() + (self.ring.capacity() * 8) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppresses_duplicates_within_window() {
        let mut w = SlidingWindow::new(100);
        assert!(w.check_and_insert(1));
        assert!(!w.check_and_insert(1));
        assert!(!w.check_and_insert(1));
        assert_eq!(w.suppressed(), 2);
        assert_eq!(w.observed(), 3);
    }

    #[test]
    fn passes_duplicates_after_eviction() {
        let mut w = SlidingWindow::new(3);
        assert!(w.check_and_insert(1));
        assert!(w.check_and_insert(2));
        assert!(w.check_and_insert(3));
        assert!(w.check_and_insert(4)); // evicts 1
        assert!(w.check_and_insert(1), "1 must pass after eviction");
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn duplicate_does_not_refresh_position() {
        // FIFO, not LRU: re-seeing key 1 must not move it to the back
        // (matches ZMap's ring implementation).
        let mut w = SlidingWindow::new(3);
        w.check_and_insert(1);
        w.check_and_insert(2);
        w.check_and_insert(3);
        assert!(!w.check_and_insert(1)); // suppressed, not refreshed
        w.check_and_insert(4); // evicts 1 (still oldest)
        assert!(w.check_and_insert(1), "1 was evicted despite recent duplicate");
    }

    #[test]
    fn capacity_one() {
        let mut w = SlidingWindow::new(1);
        assert!(w.check_and_insert(7));
        assert!(!w.check_and_insert(7));
        assert!(w.check_and_insert(8));
        assert!(w.check_and_insert(7));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        SlidingWindow::new(0);
    }

    #[test]
    fn set_and_ring_stay_consistent() {
        let mut w = SlidingWindow::new(500);
        let mut state = 1u64;
        for _ in 0..50_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
            w.check_and_insert(state >> 40); // small key space → duplicates
            assert_eq!(w.set.len() as usize, w.ring.len());
            assert!(w.ring.len() <= 500);
        }
        assert!(w.suppressed() > 0, "small key space must produce duplicates");
    }

    #[test]
    fn exactness_within_window_distance() {
        // Property from the paper: a duplicate arriving within
        // window-size distinct responses of the original is ALWAYS caught.
        let mut w = SlidingWindow::new(1000);
        w.check_and_insert(42);
        for i in 0..999u64 {
            w.check_and_insert(1_000_000 + i);
        }
        assert!(!w.check_and_insert(42), "within window distance — must suppress");
        // One more distinct key evicts 42.
        w.check_and_insert(2_000_000);
        assert!(w.check_and_insert(42), "beyond window distance — passes");
    }

    #[test]
    fn memory_scales_with_occupancy_not_keyspace() {
        let mut w = SlidingWindow::new(10_000);
        for i in 0..10_000u64 {
            // 48-bit-spread keys: the motivating case for Judy backing.
            w.check_and_insert(i.wrapping_mul(0x9E3779B97F4A7C15) >> 16);
        }
        let bytes = w.memory_bytes();
        // A flat 48-bit bitmap would be 35 TB; we must be under ~10 MB.
        assert!(bytes < 10 << 20, "memory {bytes} bytes");
    }
}
