//! A Judy-style sparse radix set over `u64` keys.
//!
//! ZMap's sliding window is backed by a Judy array (Baskins 2000) — a
//! 256-ary radix tree with adaptive node compression. We reproduce the
//! essential design: a byte-per-level radix trie whose interior nodes
//! switch between a compact sorted representation (for sparse fan-out)
//! and a full 256-pointer array (for dense fan-out), with 256-bit bitmap
//! leaves for the final byte. Lookups and updates are O(8) with small
//! constants, and memory tracks occupancy rather than key-space size —
//! exactly the property that lets a 48-bit dedup window fit in RAM.

use crate::Deduplicator;

/// Fan-out threshold at which a compact node is promoted to a full array.
const PROMOTE_AT: usize = 24;

enum Branch {
    /// Sorted parallel arrays of (byte, child) — cache-friendly when the
    /// fan-out is small, which is the common case in deep levels.
    Compact(Vec<(u8, Node)>),
    /// Full 256-slot array for dense fan-out.
    Full(Box<[Option<Node>; 256]>),
}

enum Node {
    /// Interior node (levels 0..7).
    Branch(Box<Branch>),
    /// 256-bit bitmap over the final byte (level 7).
    Leaf(Box<[u64; 4]>),
}

impl Branch {
    fn get(&self, byte: u8) -> Option<&Node> {
        match self {
            Branch::Compact(v) => v
                .binary_search_by_key(&byte, |(b, _)| *b)
                .ok()
                .map(|i| &v[i].1),
            Branch::Full(arr) => arr[usize::from(byte)].as_ref(),
        }
    }

    fn get_mut(&mut self, byte: u8) -> Option<&mut Node> {
        match self {
            Branch::Compact(v) => v
                .binary_search_by_key(&byte, |(b, _)| *b)
                .ok()
                .map(move |i| &mut v[i].1),
            Branch::Full(arr) => arr[usize::from(byte)].as_mut(),
        }
    }

    /// Gets or inserts the child for `byte`, promoting to Full if the
    /// compact node grows past the threshold.
    fn entry(&mut self, byte: u8, depth: usize) -> &mut Node {
        // Promotion first, to keep borrows simple.
        if let Branch::Compact(v) = self {
            if v.len() >= PROMOTE_AT && v.binary_search_by_key(&byte, |(b, _)| *b).is_err() {
                let mut arr: Box<[Option<Node>; 256]> =
                    Box::new(std::array::from_fn(|_| None));
                for (b, n) in v.drain(..) {
                    arr[usize::from(b)] = Some(n);
                }
                *self = Branch::Full(arr);
            }
        }
        match self {
            Branch::Compact(v) => {
                let idx = match v.binary_search_by_key(&byte, |(b, _)| *b) {
                    Ok(i) => i,
                    Err(i) => {
                        v.insert(i, (byte, Node::new(depth + 1)));
                        i
                    }
                };
                &mut v[idx].1
            }
            Branch::Full(arr) => {
                arr[usize::from(byte)].get_or_insert_with(|| Node::new(depth + 1))
            }
        }
    }

    /// Removes the child for `byte` if it exists and reports emptiness.
    fn remove_child(&mut self, byte: u8) {
        match self {
            Branch::Compact(v) => {
                if let Ok(i) = v.binary_search_by_key(&byte, |(b, _)| *b) {
                    v.remove(i);
                }
            }
            Branch::Full(arr) => arr[usize::from(byte)] = None,
        }
    }

    fn is_empty(&self) -> bool {
        match self {
            Branch::Compact(v) => v.is_empty(),
            Branch::Full(arr) => arr.iter().all(|c| c.is_none()),
        }
    }

    fn memory_bytes(&self) -> u64 {
        let own = match self {
            Branch::Compact(v) => (v.len() * std::mem::size_of::<(u8, Node)>()) as u64,
            Branch::Full(_) => 256 * std::mem::size_of::<Option<Node>>() as u64,
        };
        let children: u64 = match self {
            Branch::Compact(v) => v.iter().map(|(_, n)| n.memory_bytes()).sum(),
            Branch::Full(arr) => arr
                .iter()
                .flatten()
                .map(|n| n.memory_bytes())
                .sum(),
        };
        own + children
    }
}

impl Node {
    fn new(depth: usize) -> Node {
        if depth == 7 {
            Node::Leaf(Box::new([0u64; 4]))
        } else {
            Node::Branch(Box::new(Branch::Compact(Vec::new())))
        }
    }

    fn memory_bytes(&self) -> u64 {
        std::mem::size_of::<Node>() as u64
            + match self {
                Node::Leaf(_) => 32,
                Node::Branch(b) => b.memory_bytes(),
            }
    }
}

/// A sparse set of `u64` keys with Judy-style radix organization.
pub struct JudySet {
    root: Node,
    len: u64,
}

fn byte_at(key: u64, depth: usize) -> u8 {
    (key >> (56 - depth * 8)) as u8
}

impl JudySet {
    /// An empty set.
    pub fn new() -> Self {
        JudySet {
            root: Node::new(0),
            len: 0,
        }
    }

    /// Number of keys.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if no keys.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership test.
    pub fn contains(&self, key: u64) -> bool {
        let mut node = &self.root;
        for depth in 0..8 {
            match node {
                Node::Branch(b) => match b.get(byte_at(key, depth)) {
                    Some(child) => node = child,
                    None => return false,
                },
                Node::Leaf(bits) => {
                    let low = key as u8;
                    return bits[usize::from(low >> 6)] & (1 << (low & 63)) != 0;
                }
            }
        }
        unreachable!("leaf is always reached at depth 7")
    }

    /// Inserts `key`; returns `true` if newly inserted.
    pub fn insert(&mut self, key: u64) -> bool {
        let mut node = &mut self.root;
        let mut depth = 0usize;
        loop {
            match node {
                Node::Branch(b) => {
                    let byte = byte_at(key, depth);
                    node = b.entry(byte, depth);
                    depth += 1;
                }
                Node::Leaf(bits) => {
                    let low = key as u8;
                    let w = usize::from(low >> 6);
                    let mask = 1u64 << (low & 63);
                    let fresh = bits[w] & mask == 0;
                    bits[w] |= mask;
                    self.len += u64::from(fresh);
                    return fresh;
                }
            }
        }
    }

    /// Removes `key`; returns `true` if it was present. Empty subtrees are
    /// pruned so memory tracks live occupancy (the property the sliding
    /// window depends on).
    pub fn remove(&mut self, key: u64) -> bool {
        fn rec(node: &mut Node, key: u64, depth: usize) -> (bool, bool) {
            // returns (removed, subtree_now_empty)
            match node {
                Node::Leaf(bits) => {
                    let low = key as u8;
                    let w = usize::from(low >> 6);
                    let mask = 1u64 << (low & 63);
                    let present = bits[w] & mask != 0;
                    bits[w] &= !mask;
                    let empty = bits.iter().all(|&x| x == 0);
                    (present, empty)
                }
                Node::Branch(b) => {
                    let byte = byte_at(key, depth);
                    match b.get_mut(byte) {
                        None => (false, b.is_empty()),
                        Some(child) => {
                            let (removed, child_empty) = rec(child, key, depth + 1);
                            if child_empty {
                                b.remove_child(byte);
                            }
                            (removed, b.is_empty())
                        }
                    }
                }
            }
        }
        let (removed, _) = rec(&mut self.root, key, 0);
        self.len -= u64::from(removed);
        removed
    }

    /// Approximate heap memory in bytes.
    pub fn memory_bytes(&self) -> u64 {
        self.root.memory_bytes()
    }
}

impl Default for JudySet {
    fn default() -> Self {
        Self::new()
    }
}

impl Deduplicator for JudySet {
    fn observe(&mut self, key: u64) -> bool {
        self.insert(key)
    }

    fn memory_bytes(&self) -> u64 {
        JudySet::memory_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = JudySet::new();
        assert!(!s.contains(42));
        assert!(s.insert(42));
        assert!(s.contains(42));
        assert!(!s.insert(42));
        assert_eq!(s.len(), 1);
        assert!(s.remove(42));
        assert!(!s.contains(42));
        assert!(!s.remove(42));
        assert!(s.is_empty());
    }

    #[test]
    fn extreme_keys() {
        let mut s = JudySet::new();
        for k in [0u64, 1, u64::MAX, u64::MAX - 1, 1 << 63, (1 << 48) - 1] {
            assert!(s.insert(k), "{k}");
            assert!(s.contains(k), "{k}");
        }
        assert_eq!(s.len(), 6);
        assert!(!s.contains(2));
    }

    #[test]
    fn dense_fanout_promotes_and_stays_correct() {
        // 300 keys differing only in byte 6 forces promotion past 24.
        let mut s = JudySet::new();
        for i in 0..256u64 {
            assert!(s.insert(i << 8));
        }
        for i in 0..256u64 {
            assert!(s.contains(i << 8), "{i}");
            assert!(!s.contains((i << 8) | 1), "{i}");
        }
        assert_eq!(s.len(), 256);
    }

    #[test]
    fn removal_prunes_memory() {
        let mut s = JudySet::new();
        let empty = s.memory_bytes();
        for i in 0..10_000u64 {
            s.insert(i * 7919); // spread keys
        }
        let full = s.memory_bytes();
        assert!(full > empty);
        for i in 0..10_000u64 {
            assert!(s.remove(i * 7919));
        }
        assert!(s.is_empty());
        let after = s.memory_bytes();
        assert!(
            after <= empty + 64,
            "memory must shrink after removal: empty={empty} after={after}"
        );
    }

    #[test]
    fn sequential_versus_scattered_keys() {
        let mut s = JudySet::new();
        for i in 0..4096u64 {
            s.insert(i);
        }
        let seq = s.memory_bytes();
        let mut t = JudySet::new();
        for i in 0..4096u64 {
            t.insert(i.wrapping_mul(0x9E3779B97F4A7C15));
        }
        let scattered = t.memory_bytes();
        // Sequential keys share prefixes: must be much more compact.
        assert!(seq * 4 < scattered, "seq={seq} scattered={scattered}");
    }

    #[test]
    fn matches_std_hashset_randomized() {
        use std::collections::HashSet;
        let mut judy = JudySet::new();
        let mut std_set = HashSet::new();
        let mut state = 0x12345678u64;
        for _ in 0..20_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let key = state >> 16; // 48-bit-ish keys
            let op = state & 3;
            if op == 0 {
                assert_eq!(judy.remove(key), std_set.remove(&key));
            } else {
                assert_eq!(judy.insert(key), std_set.insert(key));
            }
            assert_eq!(judy.len(), std_set.len() as u64);
        }
        for &k in std_set.iter().take(1000) {
            assert!(judy.contains(k));
        }
    }
}
