//! The paged 2^32-bit bitmap ZMap used for single-port deduplication.
//!
//! Pages are allocated lazily: a scan that hears from 60M hosts touches
//! only the pages covering responsive space, so real memory use is far
//! below the worst-case 512 MB. Exact (no false positives or negatives)
//! but fundamentally capped at 32-bit keys.

use crate::Deduplicator;

/// Bits per page: 2^16 bits = 8 KiB per page, 2^16 pages max.
const PAGE_BITS: u64 = 1 << 16;
const PAGE_WORDS: usize = (PAGE_BITS / 64) as usize;

/// Lazily paged bitmap over the 32-bit key space.
pub struct PagedBitmap {
    pages: Vec<Option<Box<[u64; PAGE_WORDS]>>>,
    set_count: u64,
}

impl PagedBitmap {
    /// An empty bitmap (no pages allocated).
    pub fn new() -> Self {
        let mut pages = Vec::new();
        pages.resize_with(((1u64 << 32) / PAGE_BITS) as usize, || None);
        PagedBitmap {
            pages,
            set_count: 0,
        }
    }

    /// Whether `key` is set.
    pub fn contains(&self, key: u32) -> bool {
        let (p, w, b) = Self::locate(key);
        match &self.pages[p] {
            Some(page) => page[w] & (1 << b) != 0,
            None => false,
        }
    }

    /// Sets `key`; returns `true` if it was previously unset.
    pub fn insert(&mut self, key: u32) -> bool {
        let (p, w, b) = Self::locate(key);
        let page = self.pages[p].get_or_insert_with(|| Box::new([0u64; PAGE_WORDS]));
        let fresh = page[w] & (1 << b) == 0;
        page[w] |= 1 << b;
        self.set_count += u64::from(fresh);
        fresh
    }

    /// Number of set bits.
    pub fn len(&self) -> u64 {
        self.set_count
    }

    /// True if nothing is set.
    pub fn is_empty(&self) -> bool {
        self.set_count == 0
    }

    /// Number of allocated pages.
    pub fn allocated_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }

    fn locate(key: u32) -> (usize, usize, u32) {
        let page = (u64::from(key) / PAGE_BITS) as usize;
        let bit_in_page = u64::from(key) % PAGE_BITS;
        ((page), (bit_in_page / 64) as usize, (bit_in_page % 64) as u32)
    }
}

impl Default for PagedBitmap {
    fn default() -> Self {
        Self::new()
    }
}

impl Deduplicator for PagedBitmap {
    /// # Panics
    /// Panics when `key` exceeds 32 bits. Truncating here would silently
    /// alias distinct (IP, port) composites onto the same bit — dropped
    /// results in release builds, where a `debug_assert` never fires —
    /// so an out-of-range key is a hard caller error: select a window
    /// deduplicator for composite keys instead.
    fn observe(&mut self, key: u64) -> bool {
        assert!(
            key <= u64::from(u32::MAX),
            "PagedBitmap keys are 32-bit (got {key:#x}); use window dedup for composite keys"
        );
        self.insert(key as u32)
    }

    fn memory_bytes(&self) -> u64 {
        (self.allocated_pages() as u64) * (PAGE_BITS / 8)
            + (self.pages.len() as u64) * std::mem::size_of::<Option<Box<[u64; PAGE_WORDS]>>>() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty_with_no_pages() {
        let b = PagedBitmap::new();
        assert!(b.is_empty());
        assert_eq!(b.allocated_pages(), 0);
        assert!(!b.contains(0));
        assert!(!b.contains(u32::MAX));
    }

    #[test]
    fn insert_is_exact() {
        let mut b = PagedBitmap::new();
        assert!(b.insert(42));
        assert!(!b.insert(42), "second insert is a duplicate");
        assert!(b.contains(42));
        assert!(!b.contains(43));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn keys_at_page_boundaries() {
        let mut b = PagedBitmap::new();
        for key in [0u32, 65535, 65536, 131071, u32::MAX - 1, u32::MAX] {
            assert!(b.insert(key), "{key}");
            assert!(b.contains(key), "{key}");
        }
        assert_eq!(b.len(), 6);
        // 0/65535 share a page; 65536/131071 share the next.
        assert_eq!(b.allocated_pages(), 3);
    }

    #[test]
    fn pages_allocate_lazily() {
        let mut b = PagedBitmap::new();
        b.insert(0);
        assert_eq!(b.allocated_pages(), 1);
        b.insert(1); // same page
        assert_eq!(b.allocated_pages(), 1);
        b.insert(1 << 20); // different page
        assert_eq!(b.allocated_pages(), 2);
    }

    #[test]
    fn dense_page_roundtrip() {
        let mut b = PagedBitmap::new();
        for k in 0..65536u32 {
            assert!(b.insert(k));
        }
        for k in 0..65536u32 {
            assert!(b.contains(k));
            assert!(!b.insert(k));
        }
        assert_eq!(b.len(), 65536);
        assert_eq!(b.allocated_pages(), 1);
    }

    #[test]
    fn memory_accounting_scales_with_pages() {
        let mut b = PagedBitmap::new();
        let base = b.memory_bytes();
        b.insert(0);
        let one = b.memory_bytes();
        assert_eq!(one - base, 8192, "one 8 KiB page");
    }

    #[test]
    fn deduplicator_trait() {
        let mut b = PagedBitmap::new();
        assert!(Deduplicator::observe(&mut b, 777));
        assert!(!Deduplicator::observe(&mut b, 777));
    }

    #[test]
    #[should_panic(expected = "PagedBitmap keys are 32-bit")]
    fn observe_rejects_64_bit_keys_instead_of_truncating() {
        let mut b = PagedBitmap::new();
        // Would alias onto key 1 if truncated: (1, port 1) composites.
        Deduplicator::observe(&mut b, (1u64 << 32) | 1);
    }
}
