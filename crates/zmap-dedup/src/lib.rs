#![forbid(unsafe_code)]
//! Response deduplication (paper §4.1, "Response Deduplication").
//!
//! Hosts frequently send repeated responses — some aggressively re-answer
//! tens of thousands of times ("blowback", Goldblatt et al.). ZMap
//! originally filtered duplicates with a paged 2^32-bit bitmap (512 MB,
//! exact), but the multiport (IP, port) space is 48 bits — a full bitmap
//! would take 35 TB. ZMap therefore switched to a *sliding window* of the
//! last n responses backed by a Judy array; a window of 10^6 entries (the
//! ZMap default) empirically removes nearly all duplicates (Figure 5).
//!
//! This crate provides all three pieces:
//!
//! * [`PagedBitmap`] — the exact, single-port-era structure,
//! * [`JudySet`] — a from-scratch Judy-style sparse radix set over `u64`,
//! * [`SlidingWindow`] — the modern FIFO window deduplicator.
//!
//! All deduplicators implement [`Deduplicator`].

pub mod bitmap;
pub mod judy;
pub mod window;

pub use bitmap::PagedBitmap;
pub use judy::JudySet;
pub use window::SlidingWindow;

/// Packs an (IPv4, port) target into the 48-bit dedup key space.
#[inline]
pub fn target_key(ip: u32, port: u16) -> u64 {
    (u64::from(ip) << 16) | u64::from(port)
}

/// Unpacks a dedup key back into (IPv4, port).
#[inline]
pub fn key_target(key: u64) -> (u32, u16) {
    ((key >> 16) as u32, key as u16)
}

/// Common interface: `observe` returns `true` when the key is *fresh*
/// (first sighting within the structure's memory) and `false` when it is
/// a duplicate that should be suppressed.
pub trait Deduplicator {
    /// Records a response key; returns whether it should be kept.
    fn observe(&mut self, key: u64) -> bool;

    /// Bytes of memory the structure currently occupies (approximate,
    /// for the paper's 512 MB / 35 TB accounting).
    fn memory_bytes(&self) -> u64;
}

/// Bytes an exact bitmap over `bits` positions would need — the paper's
/// "extending to 48 bits would require 35 TB" arithmetic.
pub fn exact_bitmap_bytes(bits: u64) -> u64 {
    bits.div_ceil(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_roundtrip() {
        for (ip, port) in [(0u32, 0u16), (u32::MAX, u16::MAX), (0x08080808, 443)] {
            assert_eq!(key_target(target_key(ip, port)), (ip, port));
        }
    }

    #[test]
    fn key_is_injective_across_port_boundary() {
        // (ip=1, port=0) must differ from (ip=0, port high bit tricks).
        assert_ne!(target_key(1, 0), target_key(0, u16::MAX));
        assert_eq!(target_key(1, 0), 1 << 16);
    }

    #[test]
    fn paper_memory_arithmetic() {
        // 2^32 bits = 512 MB.
        assert_eq!(exact_bitmap_bytes(1 << 32), 512 * 1024 * 1024);
        // 2^48 bits = 32 TiB ≈ "35 TB" in SI units (3.5e13 bytes).
        let bytes48 = exact_bitmap_bytes(1 << 48);
        assert_eq!(bytes48, 1u64 << 45);
        let tb = bytes48 as f64 / 1e12;
        assert!((tb - 35.18).abs() < 0.1, "{tb} TB");
    }
}
