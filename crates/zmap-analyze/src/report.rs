//! Rendering: human-readable text and machine-readable JSON, both
//! deterministic (findings arrive pre-sorted from the lint pass).

use crate::baseline::Applied;

/// Renders the clippy-style text report.
pub fn text(applied: &Applied) -> String {
    let mut out = String::new();
    for f in &applied.kept {
        out.push_str(&format!("{}:{}: [{}] {}\n", f.path, f.line, f.lint, f.message));
    }
    for s in &applied.stale {
        out.push_str(&format!(
            "analyze-baseline.toml:{}: stale suppression [{}] for {} matches nothing; delete it\n",
            s.defined_at, s.lint, s.path
        ));
    }
    out.push_str(&format!(
        "zmap-analyze: {} finding(s), {} suppressed by baseline, {} stale baseline entr{}\n",
        applied.kept.len(),
        applied.suppressed,
        applied.stale.len(),
        if applied.stale.len() == 1 { "y" } else { "ies" },
    ));
    out
}

/// Renders the single-line JSON report.
pub fn json(applied: &Applied) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in applied.kept.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"lint\":{},\"path\":{},\"line\":{},\"message\":{}}}",
            escape(f.lint),
            escape(&f.path),
            f.line,
            escape(&f.message)
        ));
    }
    out.push_str("],\"stale_baseline\":[");
    for (i, s) in applied.stale.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"lint\":{},\"path\":{},\"defined_at\":{}}}",
            escape(&s.lint),
            escape(&s.path),
            s.defined_at
        ));
    }
    out.push_str(&format!("],\"suppressed\":{}}}", applied.suppressed));
    out
}

/// JSON string escaping (quotes, backslashes, control characters).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::{Applied, Suppression};
    use crate::lints::Finding;

    fn sample() -> Applied {
        Applied {
            kept: vec![Finding {
                lint: "no-unseeded-rng",
                path: "crates/x/src/lib.rs".to_string(),
                line: 7,
                message: "uses \"thread_rng\"".to_string(),
            }],
            suppressed: 2,
            stale: vec![Suppression {
                lint: "todo-fixme-gate".to_string(),
                path: "src/lib.rs".to_string(),
                reason: "r".to_string(),
                defined_at: 4,
            }],
        }
    }

    #[test]
    fn text_report_lists_findings_and_stale() {
        let t = text(&sample());
        assert!(t.contains("crates/x/src/lib.rs:7: [no-unseeded-rng]"));
        assert!(t.contains("stale suppression [todo-fixme-gate]"));
        assert!(t.contains("1 finding(s), 2 suppressed"));
    }

    #[test]
    fn json_report_is_valid_and_escaped() {
        let j = json(&sample());
        assert!(j.contains("\"line\":7"));
        assert!(j.contains("uses \\\"thread_rng\\\""));
        assert!(j.contains("\"suppressed\":2"));
        assert!(j.contains("\"defined_at\":4"));
    }
}
