//! The suppression baseline: a checked-in TOML file of findings the
//! workspace has accepted, each carrying a lint ID, a path, and a
//! human-readable reason. The analyzer subtracts baselined findings
//! before deciding its exit code, and reports *stale* entries (ones
//! that no longer match anything) so the baseline can only shrink.
//!
//! Only the TOML subset the baseline needs is parsed — `[[suppress]]`
//! array-of-tables headers and `key = "string"` pairs — keeping the
//! crate dependency-free.

use crate::lints::Finding;

/// One accepted finding class: all findings of `lint` in `path`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    pub lint: String,
    pub path: String,
    pub reason: String,
    /// Line in the baseline file (for stale-entry reporting).
    pub defined_at: u32,
}

/// Result of subtracting a baseline from a finding set.
#[derive(Debug)]
pub struct Applied {
    /// Findings not covered by any suppression.
    pub kept: Vec<Finding>,
    /// Number of findings a suppression absorbed.
    pub suppressed: usize,
    /// Baseline entries that matched nothing (must be deleted).
    pub stale: Vec<Suppression>,
}

/// Parses the baseline format. Errors carry a line number and reason.
pub fn parse(text: &str) -> Result<Vec<Suppression>, String> {
    let mut entries: Vec<Suppression> = Vec::new();
    let mut current: Option<Suppression> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[suppress]]" {
            if let Some(done) = current.take() {
                entries.push(validated(done)?);
            }
            current = Some(Suppression {
                lint: String::new(),
                path: String::new(),
                reason: String::new(),
                defined_at: lineno,
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {lineno}: expected `key = \"value\"`, got `{line}`"));
        };
        let entry = current
            .as_mut()
            .ok_or_else(|| format!("line {lineno}: key outside a [[suppress]] table"))?;
        let value = value.trim();
        let value = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| format!("line {lineno}: value must be a double-quoted string"))?;
        match key.trim() {
            "lint" => entry.lint = value.to_string(),
            "path" => entry.path = value.to_string(),
            "reason" => entry.reason = value.to_string(),
            other => return Err(format!("line {lineno}: unknown key `{other}`")),
        }
    }
    if let Some(done) = current.take() {
        entries.push(validated(done)?);
    }
    Ok(entries)
}

fn validated(s: Suppression) -> Result<Suppression, String> {
    for (field, value) in [("lint", &s.lint), ("path", &s.path), ("reason", &s.reason)] {
        if value.is_empty() {
            return Err(format!(
                "suppression at line {}: missing required `{field}`",
                s.defined_at
            ));
        }
    }
    Ok(s)
}

/// Subtracts `suppressions` from `findings`.
pub fn apply(findings: Vec<Finding>, suppressions: &[Suppression]) -> Applied {
    let mut used = vec![false; suppressions.len()];
    let mut kept = Vec::new();
    let mut suppressed = 0usize;
    for f in findings {
        let hit = suppressions
            .iter()
            .position(|s| s.lint == f.lint && s.path == f.path);
        match hit {
            Some(i) => {
                used[i] = true;
                suppressed += 1;
            }
            None => kept.push(f),
        }
    }
    let stale = suppressions
        .iter()
        .zip(&used)
        .filter(|(_, u)| !**u)
        .map(|(s, _)| s.clone())
        .collect();
    Applied {
        kept,
        suppressed,
        stale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(lint: &'static str, path: &str, line: u32) -> Finding {
        Finding {
            lint,
            path: path.to_string(),
            line,
            message: String::new(),
        }
    }

    #[test]
    fn parses_multiple_entries_with_comments() {
        let text = "# accepted debt\n\n[[suppress]]\nlint = \"no-unwrap-hot-path\"\n\
                    path = \"crates/zmap-wire/src/tcp.rs\"\nreason = \"infallible\"\n\n\
                    [[suppress]]\nlint = \"todo-fixme-gate\"\npath = \"src/lib.rs\"\n\
                    reason = \"tracked\"\n";
        let got = parse(text).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].lint, "no-unwrap-hot-path");
        assert_eq!(got[1].path, "src/lib.rs");
    }

    #[test]
    fn missing_reason_is_rejected() {
        let text = "[[suppress]]\nlint = \"x\"\npath = \"y\"\n";
        let err = parse(text).unwrap_err();
        assert!(err.contains("reason"), "{err}");
    }

    #[test]
    fn apply_partitions_and_finds_stale() {
        let sups = parse(
            "[[suppress]]\nlint = \"a\"\npath = \"p.rs\"\nreason = \"r\"\n\
             [[suppress]]\nlint = \"b\"\npath = \"q.rs\"\nreason = \"r\"\n",
        )
        .unwrap();
        let findings = vec![finding("a", "p.rs", 1), finding("a", "p.rs", 9), finding("c", "p.rs", 2)];
        let applied = apply(findings, &sups);
        assert_eq!(applied.suppressed, 2, "both `a` findings in p.rs absorbed");
        assert_eq!(applied.kept.len(), 1);
        assert_eq!(applied.kept[0].lint, "c");
        assert_eq!(applied.stale.len(), 1);
        assert_eq!(applied.stale[0].lint, "b");
    }
}
