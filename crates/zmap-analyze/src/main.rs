#![forbid(unsafe_code)]
//! CLI: `zmap-analyze check [--deny] [--json] [--baseline <file>]
//! [--root <dir>]`.
//!
//! Exit codes: 0 clean (or report-only mode), 1 findings or stale
//! baseline entries under `--deny`, 2 usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;
use zmap_analyze::{analyze_root, baseline, default_root, report};

struct Options {
    deny: bool,
    json: bool,
    baseline_path: Option<PathBuf>,
    root: PathBuf,
}

const USAGE: &str = "usage: zmap-analyze check [--deny] [--json] \
                     [--baseline <file>] [--root <dir>]";

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        deny: false,
        json: false,
        baseline_path: None,
        root: default_root(),
    };
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("check") => {}
        Some(other) => return Err(format!("unknown command `{other}`\n{USAGE}")),
        None => return Err(USAGE.to_string()),
    }
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny" => opts.deny = true,
            "--json" => opts.json = true,
            "--baseline" => {
                let v = it.next().ok_or("--baseline requires a file argument")?;
                opts.baseline_path = Some(PathBuf::from(v));
            }
            "--root" => {
                let v = it.next().ok_or("--root requires a directory argument")?;
                opts.root = PathBuf::from(v);
            }
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    Ok(opts)
}

fn run(opts: &Options) -> Result<ExitCode, String> {
    let findings =
        analyze_root(&opts.root).map_err(|e| format!("walking {}: {e}", opts.root.display()))?;

    // Default baseline: <root>/analyze-baseline.toml when present.
    let baseline_path = opts
        .baseline_path
        .clone()
        .or_else(|| {
            let p = opts.root.join("analyze-baseline.toml");
            p.exists().then_some(p)
        });
    let suppressions = match &baseline_path {
        Some(p) => {
            let text =
                std::fs::read_to_string(p).map_err(|e| format!("reading {}: {e}", p.display()))?;
            baseline::parse(&text).map_err(|e| format!("{}: {e}", p.display()))?
        }
        None => Vec::new(),
    };
    let applied = baseline::apply(findings, &suppressions);

    if opts.json {
        println!("{}", report::json(&applied));
    } else {
        print!("{}", report::text(&applied));
    }

    let dirty = !applied.kept.is_empty() || !applied.stale.is_empty();
    Ok(if opts.deny && dirty {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_options(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("zmap-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("zmap-analyze: {e}");
            ExitCode::from(2)
        }
    }
}
