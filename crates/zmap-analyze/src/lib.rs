#![forbid(unsafe_code)]
//! # zmap-analyze — workspace lint engine for determinism invariants
//!
//! The paper's engineering claims (stateless scanning, cyclic-group
//! coverage, byte-identical replay) hold only while the codebase never
//! smuggles in hidden state: unseeded randomness, wall-clock reads in
//! the engine, panics on the TX/RX hot path, or counters that exist in
//! metadata but silently vanish from the status stream. Clippy cannot
//! express these rules; this crate machine-checks them.
//!
//! The pipeline is: walk the workspace's `.rs` files ([`walk_workspace`])
//! → lex each into a line-numbered token stream ([`lexer`]) → run eight
//! project-specific lints ([`lints`]) → subtract the checked-in
//! suppression baseline ([`baseline`]) → render text or JSON
//! ([`report`]). No dependencies, no `syn`: the hand-rolled lexer is in
//! the same spirit as the vendored proptest/criterion stubs.
//!
//! Run it as `cargo run -p zmap-analyze -- check --deny`.

pub mod baseline;
pub mod lexer;
pub mod lints;
pub mod parse;
pub mod report;

use lexer::LexedFile;
use lints::Finding;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories never scanned: vendored dependency stubs, build output,
/// version control, and the analyzer's own lint fixtures (which are
/// violations on purpose).
const EXCLUDED_DIRS: [&str; 4] = ["vendor", "target", ".git", "fixtures"];

/// Collects the workspace's lintable `.rs` files, keyed by
/// workspace-relative forward-slash path, lexed and ready for the lint
/// pass.
pub fn walk_workspace(root: &Path) -> io::Result<BTreeMap<String, LexedFile>> {
    let mut files = BTreeMap::new();
    let mut stack: Vec<PathBuf> = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            if path.is_dir() {
                if !EXCLUDED_DIRS.contains(&name.as_str()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                let src = fs::read_to_string(&path)?;
                files.insert(rel, lexer::lex(&src));
            }
        }
    }
    Ok(files)
}

/// Walks `root` and runs every lint. The core entry point for tests and
/// the CLI alike.
pub fn analyze_root(root: &Path) -> io::Result<Vec<Finding>> {
    Ok(lints::run_lints(&walk_workspace(root)?))
}

/// Locates the workspace root: `CARGO_MANIFEST_DIR/../..` when invoked
/// via `cargo run -p zmap-analyze`, else the current directory.
pub fn default_root() -> PathBuf {
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => {
            let p = PathBuf::from(dir);
            p.ancestors().nth(2).map(Path::to_path_buf).unwrap_or(p)
        }
        None => PathBuf::from("."),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_root_is_the_workspace() {
        let root = default_root();
        assert!(root.join("Cargo.toml").exists());
        assert!(root.join("crates/zmap-core").exists());
    }

    #[test]
    fn walker_excludes_vendor_and_fixtures() {
        let files = walk_workspace(&default_root()).unwrap();
        assert!(files.keys().all(|p| !p.starts_with("vendor/")));
        assert!(files.keys().all(|p| !p.contains("/fixtures/")));
        assert!(files.contains_key("crates/zmap-core/src/scanner.rs"));
        assert!(files.contains_key("src/lib.rs"));
    }
}
