//! The lint pass: eight project-specific checks over the lexed token
//! streams. Each lint exists because a paper invariant (determinism,
//! statelessness, counter completeness) is only as strong as the
//! codebase's discipline about it; see DESIGN.md §9 for the mapping.

use crate::lexer::{LexedFile, Tok};
use std::collections::BTreeMap;

/// One lint violation, anchored to a workspace-relative `path:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub lint: &'static str,
    pub path: String,
    pub line: u32,
    pub message: String,
}

/// Lint IDs, in the order findings are documented.
pub const LINT_IDS: [&str; 8] = [
    "no-unwrap-hot-path",
    "no-wallclock-in-engine",
    "no-unseeded-rng",
    "must-use-fallible-send",
    "no-println-outside-cli",
    "unsafe-needs-safety-comment",
    "counter-wiring",
    "todo-fixme-gate",
];

/// Crates whose code is allowed to read the wall clock and print to the
/// console: the CLI front-end, the bench/experiment harness, and this
/// analyzer itself (a build-time tool, never on a scan path).
const FRONTEND_CRATES: [&str; 3] = ["zmap-cli", "bench", "zmap-analyze"];

/// Runs every lint over the workspace file set.
///
/// `files` maps workspace-relative forward-slash paths to lexed sources.
/// Findings come back sorted by (path, line, lint).
pub fn run_lints(files: &BTreeMap<String, LexedFile>) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (path, lexed) in files {
        lint_unwrap_hot_path(path, lexed, &mut findings);
        lint_wallclock(path, lexed, &mut findings);
        lint_unseeded_rng(path, lexed, &mut findings);
        lint_must_use_fallible(path, lexed, &mut findings);
        lint_println(path, lexed, &mut findings);
        lint_unsafe_comments(path, lexed, &mut findings);
        lint_todo_fixme(path, lexed, &mut findings);
    }
    lint_unsafe_attestation(files, &mut findings);
    lint_counter_wiring(files, &mut findings);
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.lint).cmp(&(b.path.as_str(), b.line, b.lint))
    });
    findings
}

fn crate_of(path: &str) -> Option<&str> {
    let rest = path.strip_prefix("crates/")?;
    rest.split('/').next()
}

fn is_tests_path(path: &str) -> bool {
    path.starts_with("tests/") || path.contains("/tests/")
}

fn is_examples_path(path: &str) -> bool {
    path.starts_with("examples/") || path.contains("/examples/")
}

fn basename(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

fn in_frontend_crate(path: &str) -> bool {
    crate_of(path).is_some_and(|c| FRONTEND_CRATES.contains(&c))
}

// ---------------------------------------------------------------------
// Token-stream geometry helpers.
// ---------------------------------------------------------------------

/// Index just past the `}` matching the `{` at `open`.
fn skip_brace_block(lexed: &LexedFile, open: usize) -> usize {
    debug_assert!(lexed.punct(open, '{'));
    let mut depth = 0i32;
    let mut i = open;
    while i < lexed.tokens.len() {
        if lexed.punct(i, '{') {
            depth += 1;
        } else if lexed.punct(i, '}') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    lexed.tokens.len()
}

/// Index just past the `]` matching the `[` at `open`.
fn skip_bracket_group(lexed: &LexedFile, open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < lexed.tokens.len() {
        if lexed.punct(i, '[') {
            depth += 1;
        } else if lexed.punct(i, ']') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    lexed.tokens.len()
}

/// True when the attribute group `[start..end)` (token indices spanning
/// `[` … `]`) gates on `cfg(test)` — conservatively, "mentions `test`
/// under `cfg` without a `not`".
fn attr_is_cfg_test(lexed: &LexedFile, start: usize, end: usize) -> bool {
    let mut saw_cfg = false;
    for i in start..end {
        match lexed.ident(i) {
            Some("cfg") => saw_cfg = true,
            Some("not") => return false,
            Some("test") | Some("tests") if saw_cfg => return true,
            _ => {}
        }
    }
    false
}

/// Token-index ranges covered by `#[cfg(test)]` items and `#[test]` fns.
fn test_regions(lexed: &LexedFile) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < lexed.tokens.len() {
        if lexed.punct(i, '#') && lexed.punct(i + 1, '[') {
            let attr_end = skip_bracket_group(lexed, i + 1);
            let is_test_attr = attr_is_cfg_test(lexed, i + 1, attr_end)
                || (attr_end == i + 3 && lexed.ident(i + 2) == Some("test"));
            let mut j = attr_end;
            // Skip any further attributes on the same item.
            while lexed.punct(j, '#') && lexed.punct(j + 1, '[') {
                j = skip_bracket_group(lexed, j + 1);
            }
            if is_test_attr {
                // Find the item's body: the first `{` before a `;`.
                let mut k = j;
                while k < lexed.tokens.len() {
                    if lexed.punct(k, ';') {
                        break;
                    }
                    if lexed.punct(k, '{') {
                        let end = skip_brace_block(lexed, k);
                        regions.push((i, end));
                        i = end;
                        break;
                    }
                    k += 1;
                }
                if i <= k {
                    i = k.max(j);
                }
            }
            i = i.max(attr_end);
            continue;
        }
        i += 1;
    }
    regions
}

fn in_regions(regions: &[(usize, usize)], idx: usize) -> bool {
    regions.iter().any(|&(s, e)| idx >= s && idx < e)
}

/// Body ranges (token indices inside the braces) of `trait … { … }`
/// declarations, with the nesting depth tracked so only direct trait
/// items are inspected by callers.
fn trait_bodies(lexed: &LexedFile) -> Vec<(usize, usize)> {
    let mut bodies = Vec::new();
    let mut i = 0usize;
    while i < lexed.tokens.len() {
        if lexed.ident(i) == Some("trait") {
            let mut k = i + 1;
            while k < lexed.tokens.len() {
                if lexed.punct(k, ';') {
                    break;
                }
                if lexed.punct(k, '{') {
                    bodies.push((k + 1, skip_brace_block(lexed, k) - 1));
                    break;
                }
                k += 1;
            }
            i = k;
        }
        i += 1;
    }
    bodies
}

/// Fields `(name, line)` of `struct name { … }` in declaration order.
pub fn struct_fields(lexed: &LexedFile, name: &str) -> Vec<(String, u32)> {
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i + 1 < lexed.tokens.len() {
        if lexed.ident(i) == Some("struct") && lexed.ident(i + 1) == Some(name) {
            let mut k = i + 2;
            while k < lexed.tokens.len() && !lexed.punct(k, '{') {
                if lexed.punct(k, ';') {
                    return fields; // tuple/unit struct: no named fields
                }
                k += 1;
            }
            let end = skip_brace_block(lexed, k);
            let mut depth = 0i32;
            for j in k..end {
                if lexed.punct(j, '{') {
                    depth += 1;
                } else if lexed.punct(j, '}') {
                    depth -= 1;
                } else if depth == 1 {
                    // A field name: ident directly followed by a single
                    // `:` (not a `::` path segment).
                    if let Some(id) = lexed.ident(j) {
                        let follows = lexed.punct(j + 1, ':') && !lexed.punct(j + 2, ':');
                        let preceded_by_path = j > 0 && lexed.punct(j - 1, ':');
                        let prev_ok = j == 0
                            || lexed.punct(j - 1, '{')
                            || lexed.punct(j - 1, ',')
                            || lexed.punct(j - 1, ']')
                            || lexed.punct(j - 1, ')')
                            || lexed.ident(j - 1) == Some("pub");
                        if follows && !preceded_by_path && prev_ok {
                            fields.push((id.to_string(), lexed.line(j)));
                        }
                    }
                }
            }
            return fields;
        }
        i += 1;
    }
    fields
}

/// Count of `ident` occurrences outside token range `excl`.
fn ident_occurrences_outside(lexed: &LexedFile, ident: &str, excl: (usize, usize)) -> usize {
    lexed
        .tokens
        .iter()
        .enumerate()
        .filter(|(i, t)| {
            !(excl.0..excl.1).contains(i) && matches!(&t.tok, Tok::Ident(s) if s == ident)
        })
        .count()
}

/// Token range of `struct name { … }` (from `struct` to past `}`).
fn struct_decl_range(lexed: &LexedFile, name: &str) -> Option<(usize, usize)> {
    let mut i = 0usize;
    while i + 1 < lexed.tokens.len() {
        if lexed.ident(i) == Some("struct") && lexed.ident(i + 1) == Some(name) {
            let mut k = i + 2;
            while k < lexed.tokens.len() && !lexed.punct(k, '{') {
                if lexed.punct(k, ';') {
                    return Some((i, k + 1));
                }
                k += 1;
            }
            return Some((i, skip_brace_block(lexed, k)));
        }
        i += 1;
    }
    None
}

// ---------------------------------------------------------------------
// Lint 1: no-unwrap-hot-path
// ---------------------------------------------------------------------

fn is_hot_path_file(path: &str) -> bool {
    if is_tests_path(path) || is_examples_path(path) {
        return false;
    }
    matches!(basename(path), "scanner.rs" | "parallel.rs" | "transport.rs")
        || path.starts_with("crates/zmap-wire/src/")
        || path == "crates/zmap-netsim/src/world.rs"
}

fn lint_unwrap_hot_path(path: &str, lexed: &LexedFile, out: &mut Vec<Finding>) {
    if !is_hot_path_file(path) {
        return;
    }
    let tests = test_regions(lexed);
    for i in 1..lexed.tokens.len() {
        let Some(id) = lexed.ident(i) else { continue };
        if (id == "unwrap" || id == "expect")
            && lexed.punct(i - 1, '.')
            && lexed.punct(i + 1, '(')
            && !in_regions(&tests, i)
        {
            out.push(Finding {
                lint: "no-unwrap-hot-path",
                path: path.to_string(),
                line: lexed.line(i),
                message: format!(
                    "`.{id}()` on the TX/RX hot path can panic a live scan; \
                     propagate the error or recover (see parallel::lock_world)"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Lint 2: no-wallclock-in-engine
// ---------------------------------------------------------------------

fn lint_wallclock(path: &str, lexed: &LexedFile, out: &mut Vec<Finding>) {
    if in_frontend_crate(path) {
        return;
    }
    for i in 0..lexed.tokens.len() {
        let clock = match lexed.ident(i) {
            Some("Instant") => "Instant",
            Some("SystemTime") => "SystemTime",
            _ => continue,
        };
        if lexed.punct(i + 1, ':') && lexed.punct(i + 2, ':') && lexed.ident(i + 3) == Some("now")
        {
            out.push(Finding {
                lint: "no-wallclock-in-engine",
                path: path.to_string(),
                line: lexed.line(i),
                message: format!(
                    "`{clock}::now` reads the host clock; engine code must take time \
                     from its Transport so replays are byte-identical"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Lint 3: no-unseeded-rng
// ---------------------------------------------------------------------

fn lint_unseeded_rng(path: &str, lexed: &LexedFile, out: &mut Vec<Finding>) {
    for i in 0..lexed.tokens.len() {
        let Some(id) = lexed.ident(i) else { continue };
        if matches!(id, "thread_rng" | "from_entropy" | "OsRng") {
            out.push(Finding {
                lint: "no-unseeded-rng",
                path: path.to_string(),
                line: lexed.line(i),
                message: format!(
                    "`{id}` draws OS entropy; every randomized path must derive from \
                     an explicit u64 seed (StdRng::seed_from_u64) to stay replayable"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Lint 4: must-use-fallible-send
// ---------------------------------------------------------------------

/// True when the attributes/modifiers immediately before the `fn` at
/// `fn_idx` include `#[must_use]`. `floor` bounds the backward walk.
fn has_must_use_attr(lexed: &LexedFile, fn_idx: usize, floor: usize) -> bool {
    let modifiers = ["pub", "unsafe", "async", "const", "default", "extern", "crate", "super", "self", "in"];
    let mut j = fn_idx;
    while j > floor {
        let prev = j - 1;
        if lexed.ident(prev).is_some_and(|id| modifiers.contains(&id)) {
            j = prev;
        } else if lexed.punct(prev, ')') {
            // pub(crate) and friends: walk to the opening paren.
            let mut k = prev;
            let mut depth = 0i32;
            while k > floor {
                if lexed.punct(k, ')') {
                    depth += 1;
                } else if lexed.punct(k, '(') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k -= 1;
            }
            j = k;
        } else if lexed.punct(prev, ']') {
            // An attribute group: scan its contents, then continue past.
            let mut k = prev;
            let mut depth = 0i32;
            while k > floor {
                if lexed.punct(k, ']') {
                    depth += 1;
                } else if lexed.punct(k, '[') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k -= 1;
            }
            for t in k..prev {
                if lexed.ident(t) == Some("must_use") {
                    return true;
                }
            }
            // Step over the leading `#`.
            j = k.saturating_sub(1).max(floor);
        } else {
            break;
        }
    }
    false
}

fn lint_must_use_fallible(path: &str, lexed: &LexedFile, out: &mut Vec<Finding>) {
    if is_tests_path(path) || is_examples_path(path) {
        return;
    }
    for &(body_start, body_end) in &trait_bodies(lexed) {
        let mut depth = 0i32;
        let mut i = body_start;
        while i < body_end {
            if lexed.punct(i, '{') {
                depth += 1;
            } else if lexed.punct(i, '}') {
                depth -= 1;
            } else if depth == 0 && lexed.ident(i) == Some("fn") {
                let Some(name) = lexed.ident(i + 1) else {
                    i += 1;
                    continue;
                };
                if name.starts_with("send") || name.starts_with("recv") {
                    // Signature: tokens until the body `{` or the `;`.
                    let mut k = i + 2;
                    let mut saw_arrow = false;
                    let mut returns_result = false;
                    while k < body_end && !lexed.punct(k, '{') && !lexed.punct(k, ';') {
                        if lexed.punct(k, '-') && lexed.punct(k + 1, '>') {
                            saw_arrow = true;
                        }
                        if saw_arrow && lexed.ident(k) == Some("Result") {
                            returns_result = true;
                        }
                        k += 1;
                    }
                    if returns_result && !has_must_use_attr(lexed, i, body_start) {
                        out.push(Finding {
                            lint: "must-use-fallible-send",
                            path: path.to_string(),
                            line: lexed.line(i),
                            message: format!(
                                "fallible trait method `{name}` returns Result but is not \
                                 `#[must_use]`; a dropped send/recv error is a silently \
                                 lost probe"
                            ),
                        });
                    }
                }
            }
            i += 1;
        }
    }
}

// ---------------------------------------------------------------------
// Lint 5: no-println-outside-cli
// ---------------------------------------------------------------------

fn lint_println(path: &str, lexed: &LexedFile, out: &mut Vec<Finding>) {
    if in_frontend_crate(path) || is_tests_path(path) || is_examples_path(path) {
        return;
    }
    let tests = test_regions(lexed);
    for i in 0..lexed.tokens.len() {
        let Some(id) = lexed.ident(i) else { continue };
        if matches!(id, "println" | "eprintln" | "print" | "eprint" | "dbg")
            && lexed.punct(i + 1, '!')
            && !in_regions(&tests, i)
        {
            out.push(Finding {
                lint: "no-println-outside-cli",
                path: path.to_string(),
                line: lexed.line(i),
                message: format!(
                    "`{id}!` in library code bypasses the four output streams; \
                     route through Logger or return data to the caller"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Lint 6: unsafe-needs-safety-comment (+ forbid attestation)
// ---------------------------------------------------------------------

fn lint_unsafe_comments(path: &str, lexed: &LexedFile, out: &mut Vec<Finding>) {
    for i in 0..lexed.tokens.len() {
        if lexed.ident(i) != Some("unsafe") {
            continue;
        }
        let line = lexed.line(i);
        let documented = lexed
            .comments
            .iter()
            .any(|c| c.text.contains("SAFETY") && c.line + 3 >= line && c.line <= line);
        if !documented {
            out.push(Finding {
                lint: "unsafe-needs-safety-comment",
                path: path.to_string(),
                line,
                message: "`unsafe` without a `// SAFETY:` comment in the preceding \
                          3 lines; state the invariant that makes this sound"
                    .to_string(),
            });
        }
    }
}

/// Crates with zero `unsafe` tokens in `src/` must attest with
/// `#![forbid(unsafe_code)]` in their crate root, so the zero-unsafe
/// state is compiler-enforced rather than accidental.
fn lint_unsafe_attestation(files: &BTreeMap<String, LexedFile>, out: &mut Vec<Finding>) {
    // crate key -> src dir prefix
    let mut crates: BTreeMap<String, String> = BTreeMap::new();
    for path in files.keys() {
        if let Some(name) = crate_of(path) {
            crates.insert(format!("crates/{name}"), format!("crates/{name}/src/"));
        } else if path.starts_with("src/") {
            crates.insert(String::new(), "src/".to_string());
        }
    }
    for (crate_dir, src_prefix) in crates {
        let src_files: Vec<(&String, &LexedFile)> = files
            .iter()
            .filter(|(p, _)| p.starts_with(src_prefix.as_str()))
            .collect();
        let has_unsafe = src_files.iter().any(|(_, f)| {
            f.tokens
                .iter()
                .any(|t| matches!(&t.tok, Tok::Ident(s) if s == "unsafe"))
        });
        if has_unsafe {
            continue;
        }
        let root = ["lib.rs", "main.rs"]
            .iter()
            .map(|f| format!("{src_prefix}{f}"))
            .find(|p| files.contains_key(p));
        let Some(root) = root else { continue };
        let lexed = &files[&root];
        let mut attested = false;
        for i in 0..lexed.tokens.len() {
            if lexed.ident(i) == Some("forbid")
                && lexed.punct(i + 1, '(')
                && lexed.ident(i + 2) == Some("unsafe_code")
            {
                attested = true;
                break;
            }
        }
        if !attested {
            let display = if crate_dir.is_empty() { "the umbrella crate" } else { &crate_dir };
            out.push(Finding {
                lint: "unsafe-needs-safety-comment",
                path: root.clone(),
                line: 1,
                message: format!(
                    "{display} contains no unsafe code but its root lacks \
                     `#![forbid(unsafe_code)]`; attest so regressions are \
                     compile errors"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Lint 7: counter-wiring
// ---------------------------------------------------------------------

const COUNTERS_FILE: &str = "crates/zmap-core/src/metadata.rs";
const MONITOR_FILE: &str = "crates/zmap-core/src/monitor.rs";
const CLI_STATUS_FILE: &str = "crates/zmap-cli/src/run.rs";

/// Cross-file completeness: every field of `Counters` (the canonical
/// counter registry, serialized into scan metadata) must be mirrored as
/// a `StatusUpdate` field, populated in the monitor, and rendered on the
/// CLI status path. PR 1 wired three fault counters through all of these
/// by hand; this lint makes forgetting one a CI failure.
fn lint_counter_wiring(files: &BTreeMap<String, LexedFile>, out: &mut Vec<Finding>) {
    let (Some(meta), Some(monitor), Some(cli)) = (
        files.get(COUNTERS_FILE),
        files.get(MONITOR_FILE),
        files.get(CLI_STATUS_FILE),
    ) else {
        return;
    };
    let counters = struct_fields(meta, "Counters");
    if counters.is_empty() {
        return;
    }
    let status_fields = struct_fields(monitor, "StatusUpdate");
    let status_decl = struct_decl_range(monitor, "StatusUpdate").unwrap_or((0, 0));
    for (field, line) in &counters {
        if !status_fields.iter().any(|(f, _)| f == field) {
            out.push(Finding {
                lint: "counter-wiring",
                path: COUNTERS_FILE.to_string(),
                line: *line,
                message: format!(
                    "counter `{field}` is not a StatusUpdate field; live status \
                     (stream #3) must surface every counter the metadata reports"
                ),
            });
            continue;
        }
        if ident_occurrences_outside(monitor, field, status_decl) == 0 {
            out.push(Finding {
                lint: "counter-wiring",
                path: COUNTERS_FILE.to_string(),
                line: *line,
                message: format!(
                    "counter `{field}` is declared in StatusUpdate but never \
                     populated in monitor.rs (Monitor::tick must copy it)"
                ),
            });
            continue;
        }
        if ident_occurrences_outside(cli, field, (0, 0)) == 0 {
            out.push(Finding {
                lint: "counter-wiring",
                path: COUNTERS_FILE.to_string(),
                line: *line,
                message: format!(
                    "counter `{field}` never reaches the CLI status path \
                     ({CLI_STATUS_FILE}); render it in the status line"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Lint 8: todo-fixme-gate
// ---------------------------------------------------------------------

fn lint_todo_fixme(path: &str, lexed: &LexedFile, out: &mut Vec<Finding>) {
    for c in &lexed.comments {
        for marker in ["TODO", "FIXME", "XXX"] {
            if c.text.contains(marker) {
                out.push(Finding {
                    lint: "todo-fixme-gate",
                    path: path.to_string(),
                    line: c.line,
                    message: format!(
                        "comment carries `{marker}`; deferred work must live in the \
                         baseline (with a reason) or in ROADMAP.md, not in code"
                    ),
                });
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn files_of(entries: &[(&str, &str)]) -> BTreeMap<String, LexedFile> {
        entries
            .iter()
            .map(|(p, s)| (p.to_string(), lex(s)))
            .collect()
    }

    #[test]
    fn unwrap_in_cfg_test_module_is_exempt() {
        let src = "fn hot() { x.lock().unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\n";
        let files = files_of(&[("crates/zmap-core/src/parallel.rs", src)]);
        let f: Vec<_> = run_lints(&files)
            .into_iter()
            .filter(|f| f.lint == "no-unwrap-hot-path")
            .collect();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn trait_fields_and_regions_parse() {
        let src = "pub struct S { pub a: u64, pub b: Vec<(u64, u8)>, c: f64 }";
        let lexed = lex(src);
        let names: Vec<_> = struct_fields(&lexed, "S").into_iter().map(|f| f.0).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn must_use_attr_detected_through_other_attrs() {
        let src = "trait T {\n #[doc(hidden)]\n #[must_use]\n fn send_x(&self) -> Result<(), E>;\n\
                   fn send_y(&self) -> Result<(), E>;\n fn recv_ok(&self) -> u64;\n}";
        let files = files_of(&[("crates/zmap-core/src/x.rs", src)]);
        let f: Vec<_> = run_lints(&files)
            .into_iter()
            .filter(|f| f.lint == "must-use-fallible-send")
            .collect();
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("send_y"));
    }

    #[test]
    fn wallclock_allowed_in_frontend_crates_only() {
        let src = "fn f() { let t = Instant::now(); }";
        let files = files_of(&[
            ("crates/zmap-core/src/engine.rs", src),
            ("crates/zmap-cli/src/run.rs", src),
            ("crates/bench/src/lib.rs", src),
        ]);
        let f: Vec<_> = run_lints(&files)
            .into_iter()
            .filter(|f| f.lint == "no-wallclock-in-engine")
            .collect();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].path, "crates/zmap-core/src/engine.rs");
    }

    #[test]
    fn attestation_requires_forbid_only_when_unsafe_free() {
        let clean = "pub fn f() {}";
        let attested = "#![forbid(unsafe_code)]\npub fn f() {}";
        let has_unsafe = "pub fn f() { unsafe { g() } }"; // no SAFETY comment
        let files = files_of(&[
            ("crates/a/src/lib.rs", clean),
            ("crates/b/src/lib.rs", attested),
            ("crates/c/src/lib.rs", has_unsafe),
        ]);
        let fs = run_lints(&files);
        let attest: Vec<_> = fs
            .iter()
            .filter(|f| f.message.contains("forbid"))
            .collect();
        assert_eq!(attest.len(), 1);
        assert_eq!(attest[0].path, "crates/a/src/lib.rs");
        let safety: Vec<_> = fs
            .iter()
            .filter(|f| f.message.contains("SAFETY"))
            .collect();
        assert_eq!(safety.len(), 1);
        assert_eq!(safety[0].path, "crates/c/src/lib.rs");
    }

    #[test]
    fn counter_wiring_catches_each_break() {
        let meta = "pub struct Counters { pub ok_one: u64, pub missing_status: u64, \
                    pub unpopulated: u64, pub missing_cli: u64 }";
        let monitor = "pub struct StatusUpdate { pub ok_one: u64, pub unpopulated: u64, \
                       pub missing_cli: u64 }\n\
                       fn tick(c: &Counters) { let _ = c.ok_one; let _ = c.missing_cli; }";
        let cli = "fn status(s: &StatusUpdate) { render(s.ok_one); }";
        let files = files_of(&[
            ("crates/zmap-core/src/metadata.rs", meta),
            ("crates/zmap-core/src/monitor.rs", monitor),
            ("crates/zmap-cli/src/run.rs", cli),
        ]);
        let f: Vec<_> = run_lints(&files)
            .into_iter()
            .filter(|f| f.lint == "counter-wiring")
            .collect();
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f.iter().any(|f| f.message.contains("missing_status")
            && f.message.contains("not a StatusUpdate field")));
        assert!(f.iter().any(|f| f.message.contains("unpopulated")
            && f.message.contains("populated in monitor.rs")));
        assert!(f.iter().any(|f| f.message.contains("missing_cli")
            && f.message.contains("CLI status path")));
    }
}
