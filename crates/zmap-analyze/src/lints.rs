//! The lint pass: twelve project-specific checks over the lexed token
//! streams. Each lint exists because a paper invariant (determinism,
//! statelessness, counter completeness, lock-free-ring correctness) is
//! only as strong as the codebase's discipline about it; see DESIGN.md
//! §9 for the mapping.
//!
//! Every lint is one row of the [`LINTS`] registry: id, summary, and a
//! workspace-level pass fn. `run_lints`, `report.rs`, and the docs all
//! derive from that single table, so the ID list cannot drift from the
//! dispatch.

use crate::lexer::{LexedFile, Tok};
use crate::parse::{self, CallSite, FnItem, ParsedFile};
use std::collections::BTreeMap;

/// One lint violation, anchored to a workspace-relative `path:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub lint: &'static str,
    pub path: String,
    pub line: u32,
    pub message: String,
}

/// One registered lint: the single source of truth binding an ID to its
/// pass. Docs and reports enumerate this table; `run_lints` dispatches
/// through it.
pub struct Lint {
    /// Stable machine-readable ID (appears in findings, baseline
    /// entries, JSON reports, and DESIGN.md §9).
    pub id: &'static str,
    /// One-line human summary, mirrored in the docs.
    pub summary: &'static str,
    /// The pass: appends findings for the whole workspace file set.
    pub pass: fn(&BTreeMap<String, LexedFile>, &mut Vec<Finding>),
}

/// Lifts a per-file lint into the workspace-level pass signature.
macro_rules! per_file {
    ($pass:ident, $inner:ident) => {
        fn $pass(files: &BTreeMap<String, LexedFile>, out: &mut Vec<Finding>) {
            for (path, lexed) in files {
                $inner(path, lexed, out);
            }
        }
    };
}

per_file!(pass_unwrap_hot_path, lint_unwrap_hot_path);
per_file!(pass_wallclock, lint_wallclock);
per_file!(pass_unseeded_rng, lint_unseeded_rng);
per_file!(pass_must_use_fallible, lint_must_use_fallible);
per_file!(pass_println, lint_println);
per_file!(pass_todo_fixme, lint_todo_fixme);
per_file!(pass_atomics_ordering, lint_atomics_ordering);

/// `unsafe-needs-safety-comment` has two halves sharing one ID: the
/// per-site SAFETY-comment check and the per-crate forbid attestation.
fn pass_unsafe(files: &BTreeMap<String, LexedFile>, out: &mut Vec<Finding>) {
    for (path, lexed) in files {
        lint_unsafe_comments(path, lexed, out);
    }
    lint_unsafe_attestation(files, out);
}

/// The lint registry, in the order findings are documented. Adding a
/// lint means adding a row here — there is no second list to update.
pub const LINTS: [Lint; 12] = [
    Lint {
        id: "no-unwrap-hot-path",
        summary: "no .unwrap()/.expect() on the TX/RX hot path",
        pass: pass_unwrap_hot_path,
    },
    Lint {
        id: "no-wallclock-in-engine",
        summary: "engine code must not read the host clock",
        pass: pass_wallclock,
    },
    Lint {
        id: "no-unseeded-rng",
        summary: "all randomness derives from an explicit u64 seed",
        pass: pass_unseeded_rng,
    },
    Lint {
        id: "must-use-fallible-send",
        summary: "fallible trait send/recv methods must be #[must_use]",
        pass: pass_must_use_fallible,
    },
    Lint {
        id: "no-println-outside-cli",
        summary: "library code must not print to the console",
        pass: pass_println,
    },
    Lint {
        id: "unsafe-needs-safety-comment",
        summary: "unsafe needs a SAFETY comment; unsafe-free crates must forbid",
        pass: pass_unsafe,
    },
    Lint {
        id: "counter-wiring",
        summary: "every metadata counter must reach status and the CLI",
        pass: lint_counter_wiring,
    },
    Lint {
        id: "todo-fixme-gate",
        summary: "no TODO/FIXME/XXX comments in committed code",
        pass: pass_todo_fixme,
    },
    Lint {
        id: "atomics-ordering-discipline",
        summary: "every atomic op must match a declared [atomics] protocol",
        pass: pass_atomics_ordering,
    },
    Lint {
        id: "lock-discipline",
        summary: "no lock held across sends; consistent acquisition order",
        pass: lint_lock_discipline,
    },
    Lint {
        id: "alloc-in-hot-path",
        summary: "no call-graph-reachable allocation from TX hot-path roots",
        pass: lint_alloc_in_hot_path,
    },
    Lint {
        id: "panic-reachability",
        summary: "no undocumented panic reachable from an engine entry point",
        pass: lint_panic_reachability,
    },
];

/// Lint IDs, derived from [`LINTS`] so the two can never disagree.
pub const LINT_IDS: [&str; LINTS.len()] = {
    let mut ids = [""; LINTS.len()];
    let mut i = 0;
    while i < LINTS.len() {
        ids[i] = LINTS[i].id;
        i += 1;
    }
    ids
};

/// Crates whose code is allowed to read the wall clock and print to the
/// console: the CLI front-end, the bench/experiment harness, and this
/// analyzer itself (a build-time tool, never on a scan path).
const FRONTEND_CRATES: [&str; 3] = ["zmap-cli", "bench", "zmap-analyze"];

/// Runs every registered lint over the workspace file set.
///
/// `files` maps workspace-relative forward-slash paths to lexed sources.
/// Findings come back sorted by (path, line, lint).
pub fn run_lints(files: &BTreeMap<String, LexedFile>) -> Vec<Finding> {
    let mut findings = Vec::new();
    for lint in &LINTS {
        (lint.pass)(files, &mut findings);
    }
    debug_assert!(
        findings.iter().all(|f| LINT_IDS.contains(&f.lint)),
        "a pass emitted a finding under an unregistered lint ID"
    );
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.lint).cmp(&(b.path.as_str(), b.line, b.lint))
    });
    findings
}

fn crate_of(path: &str) -> Option<&str> {
    let rest = path.strip_prefix("crates/")?;
    rest.split('/').next()
}

fn is_tests_path(path: &str) -> bool {
    path.starts_with("tests/") || path.contains("/tests/")
}

fn is_examples_path(path: &str) -> bool {
    path.starts_with("examples/") || path.contains("/examples/")
}

fn basename(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

fn in_frontend_crate(path: &str) -> bool {
    crate_of(path).is_some_and(|c| FRONTEND_CRATES.contains(&c))
}

// ---------------------------------------------------------------------
// Token-stream geometry helpers.
// ---------------------------------------------------------------------

/// Index just past the `}` matching the `{` at `open`.
fn skip_brace_block(lexed: &LexedFile, open: usize) -> usize {
    debug_assert!(lexed.punct(open, '{'));
    let mut depth = 0i32;
    let mut i = open;
    while i < lexed.tokens.len() {
        if lexed.punct(i, '{') {
            depth += 1;
        } else if lexed.punct(i, '}') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    lexed.tokens.len()
}

/// Index just past the `]` matching the `[` at `open`.
fn skip_bracket_group(lexed: &LexedFile, open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < lexed.tokens.len() {
        if lexed.punct(i, '[') {
            depth += 1;
        } else if lexed.punct(i, ']') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    lexed.tokens.len()
}

/// True when the attribute group `[start..end)` (token indices spanning
/// `[` … `]`) gates on `cfg(test)` — conservatively, "mentions `test`
/// under `cfg` without a `not`".
fn attr_is_cfg_test(lexed: &LexedFile, start: usize, end: usize) -> bool {
    let mut saw_cfg = false;
    for i in start..end {
        match lexed.ident(i) {
            Some("cfg") => saw_cfg = true,
            Some("not") => return false,
            Some("test") | Some("tests") if saw_cfg => return true,
            _ => {}
        }
    }
    false
}

/// Token-index ranges covered by `#[cfg(test)]` items and `#[test]` fns.
fn test_regions(lexed: &LexedFile) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < lexed.tokens.len() {
        if lexed.punct(i, '#') && lexed.punct(i + 1, '[') {
            let attr_end = skip_bracket_group(lexed, i + 1);
            let is_test_attr = attr_is_cfg_test(lexed, i + 1, attr_end)
                || (attr_end == i + 3 && lexed.ident(i + 2) == Some("test"));
            let mut j = attr_end;
            // Skip any further attributes on the same item.
            while lexed.punct(j, '#') && lexed.punct(j + 1, '[') {
                j = skip_bracket_group(lexed, j + 1);
            }
            if is_test_attr {
                // Find the item's body: the first `{` before a `;`.
                let mut k = j;
                while k < lexed.tokens.len() {
                    if lexed.punct(k, ';') {
                        break;
                    }
                    if lexed.punct(k, '{') {
                        let end = skip_brace_block(lexed, k);
                        regions.push((i, end));
                        i = end;
                        break;
                    }
                    k += 1;
                }
                if i <= k {
                    i = k.max(j);
                }
            }
            i = i.max(attr_end);
            continue;
        }
        i += 1;
    }
    regions
}

fn in_regions(regions: &[(usize, usize)], idx: usize) -> bool {
    regions.iter().any(|&(s, e)| idx >= s && idx < e)
}

/// Body ranges (token indices inside the braces) of `trait … { … }`
/// declarations, with the nesting depth tracked so only direct trait
/// items are inspected by callers.
fn trait_bodies(lexed: &LexedFile) -> Vec<(usize, usize)> {
    let mut bodies = Vec::new();
    let mut i = 0usize;
    while i < lexed.tokens.len() {
        if lexed.ident(i) == Some("trait") {
            let mut k = i + 1;
            while k < lexed.tokens.len() {
                if lexed.punct(k, ';') {
                    break;
                }
                if lexed.punct(k, '{') {
                    bodies.push((k + 1, skip_brace_block(lexed, k) - 1));
                    break;
                }
                k += 1;
            }
            i = k;
        }
        i += 1;
    }
    bodies
}

/// Fields `(name, line)` of `struct name { … }` in declaration order.
pub fn struct_fields(lexed: &LexedFile, name: &str) -> Vec<(String, u32)> {
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i + 1 < lexed.tokens.len() {
        if lexed.ident(i) == Some("struct") && lexed.ident(i + 1) == Some(name) {
            let mut k = i + 2;
            while k < lexed.tokens.len() && !lexed.punct(k, '{') {
                if lexed.punct(k, ';') {
                    return fields; // tuple/unit struct: no named fields
                }
                k += 1;
            }
            let end = skip_brace_block(lexed, k);
            let mut depth = 0i32;
            for j in k..end {
                if lexed.punct(j, '{') {
                    depth += 1;
                } else if lexed.punct(j, '}') {
                    depth -= 1;
                } else if depth == 1 {
                    // A field name: ident directly followed by a single
                    // `:` (not a `::` path segment).
                    if let Some(id) = lexed.ident(j) {
                        let follows = lexed.punct(j + 1, ':') && !lexed.punct(j + 2, ':');
                        let preceded_by_path = j > 0 && lexed.punct(j - 1, ':');
                        let prev_ok = j == 0
                            || lexed.punct(j - 1, '{')
                            || lexed.punct(j - 1, ',')
                            || lexed.punct(j - 1, ']')
                            || lexed.punct(j - 1, ')')
                            || lexed.ident(j - 1) == Some("pub");
                        if follows && !preceded_by_path && prev_ok {
                            fields.push((id.to_string(), lexed.line(j)));
                        }
                    }
                }
            }
            return fields;
        }
        i += 1;
    }
    fields
}

/// Count of `ident` occurrences outside token range `excl`.
fn ident_occurrences_outside(lexed: &LexedFile, ident: &str, excl: (usize, usize)) -> usize {
    lexed
        .tokens
        .iter()
        .enumerate()
        .filter(|(i, t)| {
            !(excl.0..excl.1).contains(i) && matches!(&t.tok, Tok::Ident(s) if s == ident)
        })
        .count()
}

/// Token range of `struct name { … }` (from `struct` to past `}`).
fn struct_decl_range(lexed: &LexedFile, name: &str) -> Option<(usize, usize)> {
    let mut i = 0usize;
    while i + 1 < lexed.tokens.len() {
        if lexed.ident(i) == Some("struct") && lexed.ident(i + 1) == Some(name) {
            let mut k = i + 2;
            while k < lexed.tokens.len() && !lexed.punct(k, '{') {
                if lexed.punct(k, ';') {
                    return Some((i, k + 1));
                }
                k += 1;
            }
            return Some((i, skip_brace_block(lexed, k)));
        }
        i += 1;
    }
    None
}

// ---------------------------------------------------------------------
// Lint 1: no-unwrap-hot-path
// ---------------------------------------------------------------------

fn is_hot_path_file(path: &str) -> bool {
    if is_tests_path(path) || is_examples_path(path) {
        return false;
    }
    matches!(basename(path), "scanner.rs" | "parallel.rs" | "transport.rs")
        || path.starts_with("crates/zmap-wire/src/")
        || path == "crates/zmap-netsim/src/world.rs"
}

fn lint_unwrap_hot_path(path: &str, lexed: &LexedFile, out: &mut Vec<Finding>) {
    if !is_hot_path_file(path) {
        return;
    }
    let tests = test_regions(lexed);
    for i in 1..lexed.tokens.len() {
        let Some(id) = lexed.ident(i) else { continue };
        if (id == "unwrap" || id == "expect")
            && lexed.punct(i - 1, '.')
            && lexed.punct(i + 1, '(')
            && !in_regions(&tests, i)
        {
            out.push(Finding {
                lint: "no-unwrap-hot-path",
                path: path.to_string(),
                line: lexed.line(i),
                message: format!(
                    "`.{id}()` on the TX/RX hot path can panic a live scan; \
                     propagate the error or recover (see parallel::lock_world)"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Lint 2: no-wallclock-in-engine
// ---------------------------------------------------------------------

fn lint_wallclock(path: &str, lexed: &LexedFile, out: &mut Vec<Finding>) {
    if in_frontend_crate(path) {
        return;
    }
    for i in 0..lexed.tokens.len() {
        let clock = match lexed.ident(i) {
            Some("Instant") => "Instant",
            Some("SystemTime") => "SystemTime",
            _ => continue,
        };
        if lexed.punct(i + 1, ':') && lexed.punct(i + 2, ':') && lexed.ident(i + 3) == Some("now")
        {
            out.push(Finding {
                lint: "no-wallclock-in-engine",
                path: path.to_string(),
                line: lexed.line(i),
                message: format!(
                    "`{clock}::now` reads the host clock; engine code must take time \
                     from its Transport so replays are byte-identical"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Lint 3: no-unseeded-rng
// ---------------------------------------------------------------------

fn lint_unseeded_rng(path: &str, lexed: &LexedFile, out: &mut Vec<Finding>) {
    for i in 0..lexed.tokens.len() {
        let Some(id) = lexed.ident(i) else { continue };
        if matches!(id, "thread_rng" | "from_entropy" | "OsRng") {
            out.push(Finding {
                lint: "no-unseeded-rng",
                path: path.to_string(),
                line: lexed.line(i),
                message: format!(
                    "`{id}` draws OS entropy; every randomized path must derive from \
                     an explicit u64 seed (StdRng::seed_from_u64) to stay replayable"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Lint 4: must-use-fallible-send
// ---------------------------------------------------------------------

/// True when the attributes/modifiers immediately before the `fn` at
/// `fn_idx` include `#[must_use]`. `floor` bounds the backward walk.
fn has_must_use_attr(lexed: &LexedFile, fn_idx: usize, floor: usize) -> bool {
    let modifiers = ["pub", "unsafe", "async", "const", "default", "extern", "crate", "super", "self", "in"];
    let mut j = fn_idx;
    while j > floor {
        let prev = j - 1;
        if lexed.ident(prev).is_some_and(|id| modifiers.contains(&id)) {
            j = prev;
        } else if lexed.punct(prev, ')') {
            // pub(crate) and friends: walk to the opening paren.
            let mut k = prev;
            let mut depth = 0i32;
            while k > floor {
                if lexed.punct(k, ')') {
                    depth += 1;
                } else if lexed.punct(k, '(') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k -= 1;
            }
            j = k;
        } else if lexed.punct(prev, ']') {
            // An attribute group: scan its contents, then continue past.
            let mut k = prev;
            let mut depth = 0i32;
            while k > floor {
                if lexed.punct(k, ']') {
                    depth += 1;
                } else if lexed.punct(k, '[') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k -= 1;
            }
            for t in k..prev {
                if lexed.ident(t) == Some("must_use") {
                    return true;
                }
            }
            // Step over the leading `#`.
            j = k.saturating_sub(1).max(floor);
        } else {
            break;
        }
    }
    false
}

fn lint_must_use_fallible(path: &str, lexed: &LexedFile, out: &mut Vec<Finding>) {
    if is_tests_path(path) || is_examples_path(path) {
        return;
    }
    for &(body_start, body_end) in &trait_bodies(lexed) {
        let mut depth = 0i32;
        let mut i = body_start;
        while i < body_end {
            if lexed.punct(i, '{') {
                depth += 1;
            } else if lexed.punct(i, '}') {
                depth -= 1;
            } else if depth == 0 && lexed.ident(i) == Some("fn") {
                let Some(name) = lexed.ident(i + 1) else {
                    i += 1;
                    continue;
                };
                if name.starts_with("send") || name.starts_with("recv") {
                    // Signature: tokens until the body `{` or the `;`.
                    let mut k = i + 2;
                    let mut saw_arrow = false;
                    let mut returns_result = false;
                    while k < body_end && !lexed.punct(k, '{') && !lexed.punct(k, ';') {
                        if lexed.punct(k, '-') && lexed.punct(k + 1, '>') {
                            saw_arrow = true;
                        }
                        if saw_arrow && lexed.ident(k) == Some("Result") {
                            returns_result = true;
                        }
                        k += 1;
                    }
                    if returns_result && !has_must_use_attr(lexed, i, body_start) {
                        out.push(Finding {
                            lint: "must-use-fallible-send",
                            path: path.to_string(),
                            line: lexed.line(i),
                            message: format!(
                                "fallible trait method `{name}` returns Result but is not \
                                 `#[must_use]`; a dropped send/recv error is a silently \
                                 lost probe"
                            ),
                        });
                    }
                }
            }
            i += 1;
        }
    }
}

// ---------------------------------------------------------------------
// Lint 5: no-println-outside-cli
// ---------------------------------------------------------------------

fn lint_println(path: &str, lexed: &LexedFile, out: &mut Vec<Finding>) {
    if in_frontend_crate(path) || is_tests_path(path) || is_examples_path(path) {
        return;
    }
    let tests = test_regions(lexed);
    for i in 0..lexed.tokens.len() {
        let Some(id) = lexed.ident(i) else { continue };
        if matches!(id, "println" | "eprintln" | "print" | "eprint" | "dbg")
            && lexed.punct(i + 1, '!')
            && !in_regions(&tests, i)
        {
            out.push(Finding {
                lint: "no-println-outside-cli",
                path: path.to_string(),
                line: lexed.line(i),
                message: format!(
                    "`{id}!` in library code bypasses the four output streams; \
                     route through Logger or return data to the caller"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Lint 6: unsafe-needs-safety-comment (+ forbid attestation)
// ---------------------------------------------------------------------

fn lint_unsafe_comments(path: &str, lexed: &LexedFile, out: &mut Vec<Finding>) {
    for i in 0..lexed.tokens.len() {
        if lexed.ident(i) != Some("unsafe") {
            continue;
        }
        let line = lexed.line(i);
        let documented = lexed
            .comments
            .iter()
            .any(|c| c.text.contains("SAFETY") && c.line + 3 >= line && c.line <= line);
        if !documented {
            out.push(Finding {
                lint: "unsafe-needs-safety-comment",
                path: path.to_string(),
                line,
                message: "`unsafe` without a `// SAFETY:` comment in the preceding \
                          3 lines; state the invariant that makes this sound"
                    .to_string(),
            });
        }
    }
}

/// Crates with zero `unsafe` tokens in `src/` must attest with
/// `#![forbid(unsafe_code)]` in their crate root, so the zero-unsafe
/// state is compiler-enforced rather than accidental.
fn lint_unsafe_attestation(files: &BTreeMap<String, LexedFile>, out: &mut Vec<Finding>) {
    // crate key -> src dir prefix
    let mut crates: BTreeMap<String, String> = BTreeMap::new();
    for path in files.keys() {
        if let Some(name) = crate_of(path) {
            crates.insert(format!("crates/{name}"), format!("crates/{name}/src/"));
        } else if path.starts_with("src/") {
            crates.insert(String::new(), "src/".to_string());
        }
    }
    for (crate_dir, src_prefix) in crates {
        let src_files: Vec<(&String, &LexedFile)> = files
            .iter()
            .filter(|(p, _)| p.starts_with(src_prefix.as_str()))
            .collect();
        let has_unsafe = src_files.iter().any(|(_, f)| {
            f.tokens
                .iter()
                .any(|t| matches!(&t.tok, Tok::Ident(s) if s == "unsafe"))
        });
        if has_unsafe {
            continue;
        }
        let root = ["lib.rs", "main.rs"]
            .iter()
            .map(|f| format!("{src_prefix}{f}"))
            .find(|p| files.contains_key(p));
        let Some(root) = root else { continue };
        let lexed = &files[&root];
        let mut attested = false;
        for i in 0..lexed.tokens.len() {
            if lexed.ident(i) == Some("forbid")
                && lexed.punct(i + 1, '(')
                && lexed.ident(i + 2) == Some("unsafe_code")
            {
                attested = true;
                break;
            }
        }
        if !attested {
            let display = if crate_dir.is_empty() { "the umbrella crate" } else { &crate_dir };
            out.push(Finding {
                lint: "unsafe-needs-safety-comment",
                path: root.clone(),
                line: 1,
                message: format!(
                    "{display} contains no unsafe code but its root lacks \
                     `#![forbid(unsafe_code)]`; attest so regressions are \
                     compile errors"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Lint 7: counter-wiring
// ---------------------------------------------------------------------

const COUNTERS_FILE: &str = "crates/zmap-core/src/metadata.rs";
const MONITOR_FILE: &str = "crates/zmap-core/src/monitor.rs";
const CLI_STATUS_FILE: &str = "crates/zmap-cli/src/run.rs";

/// Cross-file completeness: every field of `Counters` (the canonical
/// counter registry, serialized into scan metadata) must be mirrored as
/// a `StatusUpdate` field, populated in the monitor, and rendered on the
/// CLI status path. PR 1 wired three fault counters through all of these
/// by hand; this lint makes forgetting one a CI failure.
fn lint_counter_wiring(files: &BTreeMap<String, LexedFile>, out: &mut Vec<Finding>) {
    let (Some(meta), Some(monitor), Some(cli)) = (
        files.get(COUNTERS_FILE),
        files.get(MONITOR_FILE),
        files.get(CLI_STATUS_FILE),
    ) else {
        return;
    };
    let counters = struct_fields(meta, "Counters");
    if counters.is_empty() {
        return;
    }
    let status_fields = struct_fields(monitor, "StatusUpdate");
    let status_decl = struct_decl_range(monitor, "StatusUpdate").unwrap_or((0, 0));
    for (field, line) in &counters {
        if !status_fields.iter().any(|(f, _)| f == field) {
            out.push(Finding {
                lint: "counter-wiring",
                path: COUNTERS_FILE.to_string(),
                line: *line,
                message: format!(
                    "counter `{field}` is not a StatusUpdate field; live status \
                     (stream #3) must surface every counter the metadata reports"
                ),
            });
            continue;
        }
        if ident_occurrences_outside(monitor, field, status_decl) == 0 {
            out.push(Finding {
                lint: "counter-wiring",
                path: COUNTERS_FILE.to_string(),
                line: *line,
                message: format!(
                    "counter `{field}` is declared in StatusUpdate but never \
                     populated in monitor.rs (Monitor::tick must copy it)"
                ),
            });
            continue;
        }
        if ident_occurrences_outside(cli, field, (0, 0)) == 0 {
            out.push(Finding {
                lint: "counter-wiring",
                path: COUNTERS_FILE.to_string(),
                line: *line,
                message: format!(
                    "counter `{field}` never reaches the CLI status path \
                     ({CLI_STATUS_FILE}); render it in the status line"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Lint 8: todo-fixme-gate
// ---------------------------------------------------------------------

fn lint_todo_fixme(path: &str, lexed: &LexedFile, out: &mut Vec<Finding>) {
    for c in &lexed.comments {
        for marker in ["TODO", "FIXME", "XXX"] {
            if c.text.contains(marker) {
                out.push(Finding {
                    lint: "todo-fixme-gate",
                    path: path.to_string(),
                    line: c.line,
                    message: format!(
                        "comment carries `{marker}`; deferred work must live in the \
                         baseline (with a reason) or in ROADMAP.md, not in code"
                    ),
                });
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Lint 9: atomics-ordering-discipline
// ---------------------------------------------------------------------

/// Index just past the `)` matching the `(` at `open`.
fn skip_paren_group(lexed: &LexedFile, open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < lexed.tokens.len() {
        if lexed.punct(i, '(') {
            depth += 1;
        } else if lexed.punct(i, ')') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    lexed.tokens.len()
}

/// Methods on the std atomic types whose arguments name an `Ordering`.
const ATOMIC_OPS: [&str; 13] = [
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_max",
    "fetch_min",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Contiguous comment lines merged into blocks `(first_line, last_line,
/// joined text)` — a protocol declaration is naturally multi-line, and
/// the lexer stores `//` comments one entry per line.
fn comment_blocks(lexed: &LexedFile) -> Vec<(u32, u32, String)> {
    let mut blocks: Vec<(u32, u32, String)> = Vec::new();
    for c in &lexed.comments {
        match blocks.last_mut() {
            Some((_, last, text)) if c.line <= *last + 1 => {
                *last = (*last).max(c.line);
                text.push(' ');
                text.push_str(&c.text);
            }
            _ => blocks.push((c.line, c.line, c.text.clone())),
        }
    }
    blocks
}

/// Memory-ordering names mentioned as `Ordering::X` in `[start..end)`.
fn orderings_in(lexed: &LexedFile, start: usize, end: usize) -> Vec<&'static str> {
    let mut out = Vec::new();
    for i in start..end.min(lexed.tokens.len()) {
        if lexed.ident(i) == Some("Ordering") && lexed.punct(i + 1, ':') && lexed.punct(i + 2, ':')
        {
            let o = match lexed.ident(i + 3) {
                Some("Relaxed") => "Relaxed",
                Some("Acquire") => "Acquire",
                Some("Release") => "Release",
                Some("AcqRel") => "AcqRel",
                Some("SeqCst") => "SeqCst",
                _ => continue,
            };
            out.push(o);
        }
    }
    out
}

/// Every `Ordering::Relaxed`/`Acquire`/`Release`/`AcqRel` site must be
/// covered by a declared per-receiver protocol comment of the form
/// `// [atomics] <receiver>: … <Ordering names> …` (anywhere in the same
/// file, normally at the field declaration), or — for closure-local
/// receivers whose binding name is not the field — an `[atomics]`
/// comment within the 3 lines above the site. `SeqCst` is denied
/// outright: it papers over not knowing the protocol. And inside any fn
/// that indexes a slot array (`slots[…]`/`slot[…]`), the guarding
/// counter loads must include an `Acquire` — a `Relaxed` load may never
/// guard a slot read, because nothing would order the slot's contents
/// after the counter observation.
fn lint_atomics_ordering(path: &str, lexed: &LexedFile, out: &mut Vec<Finding>) {
    if in_frontend_crate(path) || is_tests_path(path) || is_examples_path(path) {
        return;
    }
    let parsed = parse::parse(lexed);
    let blocks = comment_blocks(lexed);
    for f in parsed.fns.iter().filter(|f| !f.in_test && f.body.is_some()) {
        // Counter loads seen so far in this fn, for the slot-guard rule:
        // (token idx, had Acquire or stronger).
        let mut loads_seen: Vec<(usize, bool)> = Vec::new();
        for call in &f.calls {
            if !ATOMIC_OPS.contains(&call.name.as_str()) {
                continue;
            }
            let args_end = skip_paren_group(lexed, call.idx + 1);
            let orderings = orderings_in(lexed, call.idx + 1, args_end);
            if orderings.is_empty() {
                continue; // same method name on a non-atomic type
            }
            if call.name == "load" {
                let acq = orderings.iter().any(|o| matches!(*o, "Acquire" | "AcqRel" | "SeqCst"));
                loads_seen.push((call.idx, acq));
            }
            if orderings.contains(&"SeqCst") {
                out.push(Finding {
                    lint: "atomics-ordering-discipline",
                    path: path.to_string(),
                    line: call.line,
                    message: format!(
                        "`{}` uses Ordering::SeqCst; name the actual acquire/release \
                         protocol instead — SeqCst here means the protocol is unknown",
                        call.name
                    ),
                });
                continue;
            }
            let receiver = call.receiver.as_deref().unwrap_or("");
            let tag = format!("[atomics] {receiver}");
            let covered = blocks.iter().any(|(first, last, text)| {
                let declares = (!receiver.is_empty() && text.contains(tag.as_str()))
                    || (text.contains("[atomics]")
                        && *last + 3 >= call.line
                        && *first < call.line);
                declares && orderings.iter().all(|o| text.contains(o))
            });
            if !covered {
                out.push(Finding {
                    lint: "atomics-ordering-discipline",
                    path: path.to_string(),
                    line: call.line,
                    message: format!(
                        "atomic `{}.{}` uses Ordering::{} without a matching \
                         `[atomics] {}: …` protocol comment declaring that ordering",
                        receiver,
                        call.name,
                        orderings.join("/"),
                        receiver,
                    ),
                });
            }
        }
        // Slot-guard rule: find indexed slot accesses in this body.
        let (body_start, body_end) = f.body.unwrap_or((0, 0));
        for i in body_start..body_end.min(lexed.tokens.len()) {
            let is_slot = matches!(lexed.ident(i), Some("slots") | Some("slot"));
            if !is_slot || !lexed.punct(i + 1, '[') {
                continue;
            }
            let prior: Vec<&(usize, bool)> =
                loads_seen.iter().filter(|(idx, _)| *idx < i).collect();
            if !prior.is_empty() && prior.iter().all(|(_, acq)| !acq) {
                out.push(Finding {
                    lint: "atomics-ordering-discipline",
                    path: path.to_string(),
                    line: lexed.line(i),
                    message: "slot read is guarded only by Relaxed counter loads; the \
                              peer counter must be read with Acquire so the slot's \
                              contents are ordered after the observation"
                        .to_string(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// Lint 10: lock-discipline
// ---------------------------------------------------------------------

/// Calls that hand frames to a transport — blocking or retrying, so a
/// lock held across one stalls the peer thread for the full send.
const TX_SINK_CALLS: [&str; 6] =
    ["send", "send_batch", "send_batch_at", "send_frame", "flush", "flush_shared"];

/// Files whose lock acquisition order is checked for global consistency
/// (the three subsystems a TX thread can hold locks from).
const LOCK_ORDER_FILES: [&str; 3] = [
    "crates/zmap-core/src/parallel.rs",
    "crates/zmap-core/src/log.rs",
    "crates/zmap-core/src/metrics.rs",
];

/// One lock acquisition inside a fn body.
struct LockSite {
    /// Lock identity: receiver of `.lock()` or first-arg of `lock_world`.
    name: String,
    /// Guard binding (`let g = …`), when the statement is a let.
    binding: Option<String>,
    line: u32,
    /// Token index of the `lock`/`lock_world` ident.
    idx: usize,
    /// Token index past which the guard is certainly dead.
    live_end: usize,
}

/// The `let` binding name when the statement containing token `i` is
/// `let [mut] <name> = …`. Walks back to the nearest statement boundary.
fn let_binding_of(lexed: &LexedFile, i: usize) -> Option<String> {
    let mut j = i;
    while j > 0 {
        j -= 1;
        if lexed.punct(j, ';') || lexed.punct(j, '{') || lexed.punct(j, '}') {
            break;
        }
        if lexed.ident(j) == Some("let") {
            let name_at = if lexed.ident(j + 1) == Some("mut") { j + 2 } else { j + 1 };
            return lexed.ident(name_at).map(str::to_string);
        }
    }
    None
}

/// Token index past the end of the statement containing `i` (the next
/// `;` at the current nesting depth, or the enclosing block's end).
fn statement_end(lexed: &LexedFile, i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < lexed.tokens.len() {
        if lexed.punct(j, '{') || lexed.punct(j, '(') || lexed.punct(j, '[') {
            depth += 1;
        } else if lexed.punct(j, '}') || lexed.punct(j, ')') || lexed.punct(j, ']') {
            depth -= 1;
            if depth < 0 {
                return j;
            }
        } else if depth == 0 && lexed.punct(j, ';') {
            return j + 1;
        }
        j += 1;
    }
    lexed.tokens.len()
}

/// Token index of the enclosing block's `}` starting from `i`.
fn enclosing_block_end(lexed: &LexedFile, i: usize, hard_end: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < hard_end.min(lexed.tokens.len()) {
        if lexed.punct(j, '{') || lexed.punct(j, '(') || lexed.punct(j, '[') {
            depth += 1;
        } else if lexed.punct(j, '}') || lexed.punct(j, ')') || lexed.punct(j, ']') {
            depth -= 1;
            if depth < 0 {
                return j;
            }
        }
        j += 1;
    }
    hard_end
}

/// Lock acquisitions in `f`'s body, with guard live ranges.
fn lock_sites(lexed: &LexedFile, f: &FnItem) -> Vec<LockSite> {
    let Some((body_start, body_end)) = f.body else { return Vec::new() };
    let mut sites = Vec::new();
    for call in &f.calls {
        let (name, idx) = match call.name.as_str() {
            "lock" if call.is_method => {
                (call.receiver.clone().unwrap_or_else(|| "<lock>".into()), call.idx)
            }
            "lock_world" => {
                // Identity is the last ident of the first argument:
                // `lock_world(&self.world, &recoveries)` → `world`.
                let args_end = skip_paren_group(lexed, call.idx + 1);
                let mut ident = None;
                for t in call.idx + 2..args_end {
                    if lexed.punct(t, ',') {
                        break;
                    }
                    if let Some(id) = lexed.ident(t) {
                        if id != "self" {
                            ident = Some(id.to_string());
                        }
                    }
                }
                (ident.unwrap_or_else(|| "world".into()), call.idx)
            }
            _ => continue,
        };
        let binding = let_binding_of(lexed, idx);
        let live_end = if binding.is_some() {
            enclosing_block_end(lexed, idx, body_end)
        } else {
            statement_end(lexed, idx)
        };
        let _ = body_start;
        sites.push(LockSite { name, binding, line: call.line, idx, live_end });
    }
    sites
}

/// (a) No lock may be held across a transport send/flush call — the
/// guard exemption is calls *on the guard itself* (`world.send(…)` where
/// `world` is the guard: the lock IS the transport's serialization
/// point, which is calling through the lock, not holding an unrelated
/// one across it). An explicit `drop(guard)` before the send also ends
/// the hazard. (b) Across `parallel.rs`/`log.rs`/`metrics.rs`, any two
/// locks acquired in one fn must be acquired in a globally consistent
/// order, or two threads taking them in opposite orders deadlock.
fn lint_lock_discipline(files: &BTreeMap<String, LexedFile>, out: &mut Vec<Finding>) {
    // Global acquisition-order observations: (first, second) -> site.
    let mut order: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();
    for (path, lexed) in files {
        if in_frontend_crate(path) || is_tests_path(path) || is_examples_path(path) {
            continue;
        }
        let parsed = parse::parse(lexed);
        for f in parsed.fns.iter().filter(|f| !f.in_test) {
            let sites = lock_sites(lexed, f);
            // Rule (a): sends under a live guard.
            for site in &sites {
                for call in &f.calls {
                    if call.idx <= site.idx || call.idx >= site.live_end {
                        continue;
                    }
                    // An explicit drop of the guard ends the hazard.
                    if let Some(b) = &site.binding {
                        let dropped = f.calls.iter().any(|c| {
                            c.name == "drop"
                                && c.idx > site.idx
                                && c.idx < call.idx
                                && lexed.ident(c.idx + 2) == Some(b.as_str())
                        });
                        if dropped {
                            continue;
                        }
                    }
                    if !TX_SINK_CALLS.contains(&call.name.as_str()) {
                        continue;
                    }
                    let recv = call.receiver.as_deref();
                    let through_guard = recv.is_some()
                        && (recv == site.binding.as_deref()
                            || recv == Some("lock_world")
                            || recv == Some("lock"));
                    if through_guard {
                        continue;
                    }
                    out.push(Finding {
                        lint: "lock-discipline",
                        path: path.to_string(),
                        line: call.line,
                        message: format!(
                            "`{}` is called while the `{}` lock (taken line {}) is \
                             still held; a blocked send stalls every thread waiting \
                             on that lock — drop the guard first",
                            call.name, site.name, site.line
                        ),
                    });
                }
            }
            // Rule (b): pairwise acquisition order in the three
            // lock-bearing subsystems.
            if LOCK_ORDER_FILES.contains(&path.as_str()) {
                for (a, b) in sites.iter().zip(sites.iter().skip(1)) {
                    if a.name == b.name {
                        continue;
                    }
                    let pair = (a.name.clone(), b.name.clone());
                    let reverse = (b.name.clone(), a.name.clone());
                    if let Some((rpath, rline)) = order.get(&reverse) {
                        out.push(Finding {
                            lint: "lock-discipline",
                            path: path.to_string(),
                            line: b.line,
                            message: format!(
                                "locks `{}` then `{}` acquired here, but {}:{} takes \
                                 them in the opposite order; pick one global order or \
                                 two threads can deadlock",
                                a.name, b.name, rpath, rline
                            ),
                        });
                    } else {
                        order.entry(pair).or_insert((path.clone(), a.line));
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Call graph (shared by lints 11 and 12)
// ---------------------------------------------------------------------

/// The workspace call graph: every fn in every file, with name-resolved
/// edges. Resolution is by name (plus owner for `Qual::fn` calls) — an
/// over-approximation by design: a false edge can only make the
/// reachability lints *stricter*, never let a real path escape.
struct Graph {
    /// Parallel to `files` iteration order: (path, parsed).
    files: Vec<(String, ParsedFile)>,
    /// fn name -> every (file idx, fn idx) bearing it.
    by_name: BTreeMap<String, Vec<(usize, usize)>>,
}

impl Graph {
    fn build(files: &BTreeMap<String, LexedFile>) -> Graph {
        let parsed: Vec<(String, ParsedFile)> = files
            .iter()
            .map(|(p, l)| (p.clone(), parse::parse(l)))
            .collect();
        let mut by_name: BTreeMap<String, Vec<(usize, usize)>> = BTreeMap::new();
        for (fi, (_, pf)) in parsed.iter().enumerate() {
            for (ni, f) in pf.fns.iter().enumerate() {
                by_name.entry(f.name.clone()).or_default().push((fi, ni));
            }
        }
        Graph { files: parsed, by_name }
    }

    fn node(&self, id: (usize, usize)) -> &FnItem {
        &self.files[id.0].1.fns[id.1]
    }

    fn path(&self, id: (usize, usize)) -> &str {
        &self.files[id.0].0
    }

    /// Workspace fns a call site may land in.
    fn resolve(&self, call: &CallSite) -> Vec<(usize, usize)> {
        let Some(cands) = self.by_name.get(&call.name) else { return Vec::new() };
        cands
            .iter()
            .copied()
            .filter(|&id| {
                let node = self.node(id);
                match (&call.qualifier, call.is_method) {
                    // `Qual::fn(…)`: only impls of a matching owner (or
                    // free fns, for path-qualified module calls).
                    (Some(q), _) => {
                        node.owner.as_deref() == Some(q.as_str()) || node.owner.is_none()
                    }
                    // `x.fn(…)`: any impl method of that name.
                    (None, true) => node.owner.is_some(),
                    // `fn(…)`: any fn of that name.
                    (None, false) => true,
                }
            })
            .collect()
    }

    /// Multi-source BFS from `roots`, skipping nodes where `excluded`.
    /// Returns, per reached node, the chain of fn names from its root.
    fn reach(
        &self,
        roots: &[(usize, usize)],
        excluded: &dyn Fn(&Graph, (usize, usize)) -> bool,
    ) -> BTreeMap<(usize, usize), Vec<String>> {
        let mut chains: BTreeMap<(usize, usize), Vec<String>> = BTreeMap::new();
        let mut queue: Vec<(usize, usize)> = Vec::new();
        for &r in roots {
            if excluded(self, r) || chains.contains_key(&r) {
                continue;
            }
            chains.insert(r, vec![self.qualified_name(r)]);
            queue.push(r);
        }
        let mut qi = 0usize;
        while qi < queue.len() {
            let cur = queue[qi];
            qi += 1;
            let chain = chains[&cur].clone();
            for call in &self.node(cur).calls {
                for next in self.resolve(call) {
                    if next == cur || chains.contains_key(&next) || excluded(self, next) {
                        continue;
                    }
                    let mut c = chain.clone();
                    c.push(self.qualified_name(next));
                    chains.insert(next, c);
                    queue.push(next);
                }
            }
        }
        chains
    }

    fn qualified_name(&self, id: (usize, usize)) -> String {
        let f = self.node(id);
        match &f.owner {
            Some(o) => format!("{o}::{}", f.name),
            None => f.name.clone(),
        }
    }
}

// ---------------------------------------------------------------------
// Lint 11: alloc-in-hot-path
// ---------------------------------------------------------------------

/// Hot-path roots: the per-frame TX machinery. A heap allocation
/// reachable from any of these runs millions of times per scan.
fn is_alloc_root(f: &FnItem) -> bool {
    match f.owner.as_deref() {
        Some("SpscRing") => matches!(f.name.as_str(), "push" | "try_push" | "pop" | "try_pop"),
        Some("StagedRender") => matches!(f.name.as_str(), "push" | "render"),
        _ => matches!(f.name.as_str(), "send_batch" | "send_batch_at" | "flush_shared"),
    }
}

const ALLOC_QUALIFIERS: [&str; 8] =
    ["Vec", "Box", "String", "VecDeque", "HashMap", "BTreeMap", "HashSet", "BTreeSet"];
const ALLOC_CTORS: [&str; 3] = ["new", "with_capacity", "from"];
const ALLOC_METHODS: [&str; 5] = ["to_string", "to_owned", "to_vec", "into_bytes", "join"];
const ALLOC_MACROS: [&str; 2] = ["vec", "format"];

/// Types whose methods allocate *as their contract*: capture transports
/// exist to retain copies of the frames they are handed, so their
/// allocations are the feature, not a hot-path leak.
const CAPTURE_TYPES: [&str; 1] = ["LoopbackTransport"];

/// Crates whose allocations are not hot-path findings even when
/// reachable: the simulated network "hardware" (zmap-netsim) allocates
/// by design — it stands in for the kernel/NIC, not for engine code.
fn alloc_excluded(g: &Graph, id: (usize, usize)) -> bool {
    let path = g.path(id);
    let node = g.node(id);
    node.in_test
        || is_tests_path(path)
        || is_examples_path(path)
        || in_frontend_crate(path)
        || crate_of(path) == Some("zmap-netsim")
        || node.owner.as_deref().is_some_and(|o| CAPTURE_TYPES.contains(&o))
}

fn lint_alloc_in_hot_path(files: &BTreeMap<String, LexedFile>, out: &mut Vec<Finding>) {
    let g = Graph::build(files);
    let mut roots = Vec::new();
    for (fi, (_, pf)) in g.files.iter().enumerate() {
        for (ni, f) in pf.fns.iter().enumerate() {
            if is_alloc_root(f) && !alloc_excluded(&g, (fi, ni)) {
                roots.push((fi, ni));
            }
        }
    }
    let reached = g.reach(&roots, &alloc_excluded);
    for (&id, chain) in &reached {
        let f = g.node(id);
        for call in &f.calls {
            let is_alloc = match (&call.qualifier, call.is_method) {
                (Some(q), _) => {
                    ALLOC_QUALIFIERS.contains(&q.as_str())
                        && ALLOC_CTORS.contains(&call.name.as_str())
                }
                (None, true) => ALLOC_METHODS.contains(&call.name.as_str()),
                (None, false) => false,
            };
            if is_alloc {
                out.push(Finding {
                    lint: "alloc-in-hot-path",
                    path: g.path(id).to_string(),
                    line: call.line,
                    message: format!(
                        "`{}` allocates on a path reachable from hot-path root via \
                         {}; preallocate outside the TX loop",
                        call.name,
                        chain.join(" → ")
                    ),
                });
            }
        }
        for m in &f.macros {
            if ALLOC_MACROS.contains(&m.name.as_str()) {
                out.push(Finding {
                    lint: "alloc-in-hot-path",
                    path: g.path(id).to_string(),
                    line: m.line,
                    message: format!(
                        "`{}!` allocates on a path reachable from hot-path root via \
                         {}; preallocate outside the TX loop",
                        m.name,
                        chain.join(" → ")
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// Lint 12: panic-reachability
// ---------------------------------------------------------------------

/// Engine entry points: the fns a scan actually enters through.
const ENGINE_ENTRY_FNS: [&str; 5] =
    ["run", "run_with", "run_parallel", "run_parallel_with", "resume_parallel"];
const ENGINE_CRATES: [&str; 2] = ["zmap-core", "zmap-masscan"];

/// Macros that abort; `assert!`/`debug_assert!`/`unreachable!` are
/// deliberately not counted — they state invariants, and banning them
/// would push people toward silent corruption instead.
const PANIC_MACROS: [&str; 3] = ["panic", "todo", "unimplemented"];
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];

fn panic_excluded(g: &Graph, id: (usize, usize)) -> bool {
    let path = g.path(id);
    g.node(id).in_test || is_tests_path(path) || is_examples_path(path) || in_frontend_crate(path)
}

/// Every `panic!`/`.unwrap()`/`.expect()` in a fn reachable from an
/// engine entry point is a scan-aborting landmine the per-line hot-path
/// lint cannot see (it only knows file names, not the call graph). Two
/// escapes: a `# Panics` doc section on the containing fn (the panic is
/// a documented contract), and sites in hot-path files (already policed
/// per-line by `no-unwrap-hot-path` — no double reporting).
fn lint_panic_reachability(files: &BTreeMap<String, LexedFile>, out: &mut Vec<Finding>) {
    let g = Graph::build(files);
    let mut roots = Vec::new();
    for (fi, (path, pf)) in g.files.iter().enumerate() {
        if !crate_of(path).is_some_and(|c| ENGINE_CRATES.contains(&c)) {
            continue;
        }
        for (ni, f) in pf.fns.iter().enumerate() {
            if ENGINE_ENTRY_FNS.contains(&f.name.as_str()) && !panic_excluded(&g, (fi, ni)) {
                roots.push((fi, ni));
            }
        }
    }
    let reached = g.reach(&roots, &panic_excluded);
    for (&id, chain) in &reached {
        let f = g.node(id);
        let path = g.path(id);
        if f.has_panics_doc || is_hot_path_file(path) {
            continue;
        }
        for call in &f.calls {
            if call.is_method && PANIC_METHODS.contains(&call.name.as_str()) {
                out.push(Finding {
                    lint: "panic-reachability",
                    path: path.to_string(),
                    line: call.line,
                    message: format!(
                        "`.{}()` can abort a live scan: reachable from engine entry \
                         via {}; recover, propagate, or document a `# Panics` contract",
                        call.name,
                        chain.join(" → ")
                    ),
                });
            }
        }
        for m in &f.macros {
            if PANIC_MACROS.contains(&m.name.as_str()) {
                out.push(Finding {
                    lint: "panic-reachability",
                    path: path.to_string(),
                    line: m.line,
                    message: format!(
                        "`{}!` aborts a live scan: reachable from engine entry via \
                         {}; recover, propagate, or document a `# Panics` contract",
                        m.name,
                        chain.join(" → ")
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn files_of(entries: &[(&str, &str)]) -> BTreeMap<String, LexedFile> {
        entries
            .iter()
            .map(|(p, s)| (p.to_string(), lex(s)))
            .collect()
    }

    #[test]
    fn unwrap_in_cfg_test_module_is_exempt() {
        let src = "fn hot() { x.lock().unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\n";
        let files = files_of(&[("crates/zmap-core/src/parallel.rs", src)]);
        let f: Vec<_> = run_lints(&files)
            .into_iter()
            .filter(|f| f.lint == "no-unwrap-hot-path")
            .collect();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn trait_fields_and_regions_parse() {
        let src = "pub struct S { pub a: u64, pub b: Vec<(u64, u8)>, c: f64 }";
        let lexed = lex(src);
        let names: Vec<_> = struct_fields(&lexed, "S").into_iter().map(|f| f.0).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn must_use_attr_detected_through_other_attrs() {
        let src = "trait T {\n #[doc(hidden)]\n #[must_use]\n fn send_x(&self) -> Result<(), E>;\n\
                   fn send_y(&self) -> Result<(), E>;\n fn recv_ok(&self) -> u64;\n}";
        let files = files_of(&[("crates/zmap-core/src/x.rs", src)]);
        let f: Vec<_> = run_lints(&files)
            .into_iter()
            .filter(|f| f.lint == "must-use-fallible-send")
            .collect();
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("send_y"));
    }

    #[test]
    fn wallclock_allowed_in_frontend_crates_only() {
        let src = "fn f() { let t = Instant::now(); }";
        let files = files_of(&[
            ("crates/zmap-core/src/engine.rs", src),
            ("crates/zmap-cli/src/run.rs", src),
            ("crates/bench/src/lib.rs", src),
        ]);
        let f: Vec<_> = run_lints(&files)
            .into_iter()
            .filter(|f| f.lint == "no-wallclock-in-engine")
            .collect();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].path, "crates/zmap-core/src/engine.rs");
    }

    #[test]
    fn attestation_requires_forbid_only_when_unsafe_free() {
        let clean = "pub fn f() {}";
        let attested = "#![forbid(unsafe_code)]\npub fn f() {}";
        let has_unsafe = "pub fn f() { unsafe { g() } }"; // no SAFETY comment
        let files = files_of(&[
            ("crates/a/src/lib.rs", clean),
            ("crates/b/src/lib.rs", attested),
            ("crates/c/src/lib.rs", has_unsafe),
        ]);
        let fs = run_lints(&files);
        let attest: Vec<_> = fs
            .iter()
            .filter(|f| f.message.contains("forbid"))
            .collect();
        assert_eq!(attest.len(), 1);
        assert_eq!(attest[0].path, "crates/a/src/lib.rs");
        let safety: Vec<_> = fs
            .iter()
            .filter(|f| f.message.contains("SAFETY"))
            .collect();
        assert_eq!(safety.len(), 1);
        assert_eq!(safety[0].path, "crates/c/src/lib.rs");
    }

    #[test]
    fn counter_wiring_catches_each_break() {
        let meta = "pub struct Counters { pub ok_one: u64, pub missing_status: u64, \
                    pub unpopulated: u64, pub missing_cli: u64 }";
        let monitor = "pub struct StatusUpdate { pub ok_one: u64, pub unpopulated: u64, \
                       pub missing_cli: u64 }\n\
                       fn tick(c: &Counters) { let _ = c.ok_one; let _ = c.missing_cli; }";
        let cli = "fn status(s: &StatusUpdate) { render(s.ok_one); }";
        let files = files_of(&[
            ("crates/zmap-core/src/metadata.rs", meta),
            ("crates/zmap-core/src/monitor.rs", monitor),
            ("crates/zmap-cli/src/run.rs", cli),
        ]);
        let f: Vec<_> = run_lints(&files)
            .into_iter()
            .filter(|f| f.lint == "counter-wiring")
            .collect();
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f.iter().any(|f| f.message.contains("missing_status")
            && f.message.contains("not a StatusUpdate field")));
        assert!(f.iter().any(|f| f.message.contains("unpopulated")
            && f.message.contains("populated in monitor.rs")));
        assert!(f.iter().any(|f| f.message.contains("missing_cli")
            && f.message.contains("CLI status path")));
    }
}
