//! A minimal hand-rolled Rust lexer: enough fidelity to walk `.rs`
//! sources as a line-numbered token stream without ever confusing
//! string/comment contents for code.
//!
//! The lexer is deliberately lossy where lints don't care — numeric
//! literals keep no value, `::` is two `:` punct tokens — but it is
//! exact about the things that make naive grep-based linting wrong:
//! nested block comments, raw strings, byte strings, char literals vs.
//! lifetimes, and escapes. Comments are preserved in a side channel so
//! lints like `unsafe-needs-safety-comment` and `todo-fixme-gate` can
//! inspect them.

/// One lexical token (trivia excluded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `unwrap`, `Instant`, ...).
    Ident(String),
    /// Single punctuation character (`::` arrives as two `:`).
    Punct(char),
    /// Any string literal (`"…"`, `r#"…"#`, `b"…"`). Contents dropped.
    Str,
    /// A char or byte literal (`'a'`, `b'\n'`). Contents dropped.
    Char,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// A numeric literal. Value dropped.
    Num,
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub line: u32,
    pub tok: Tok,
}

/// A comment (line or block, doc or plain) with its starting line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct LexedFile {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

impl LexedFile {
    /// The identifier text of token `i`, if it is an identifier.
    pub fn ident(&self, i: usize) -> Option<&str> {
        match self.tokens.get(i).map(|t| &t.tok) {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True when token `i` is the punct `c`.
    pub fn punct(&self, i: usize, c: char) -> bool {
        matches!(self.tokens.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
    }

    /// Line of token `i` (0 when out of range, which callers never hit).
    pub fn line(&self, i: usize) -> u32 {
        self.tokens.get(i).map(|t| t.line).unwrap_or(0)
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied();
        if let Some(b) = b {
            self.pos += 1;
            if b == b'\n' {
                self.line += 1;
            }
        }
        b
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lexes `src` into tokens and comments.
pub fn lex(src: &str) -> LexedFile {
    let mut c = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = LexedFile::default();

    while let Some(b) = c.peek(0) {
        let line = c.line;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
            }
            b'/' if c.peek(1) == Some(b'/') => {
                let start = c.pos;
                while let Some(b) = c.peek(0) {
                    if b == b'\n' {
                        break;
                    }
                    c.bump();
                }
                out.comments.push(Comment {
                    line,
                    text: String::from_utf8_lossy(&c.src[start..c.pos]).into_owned(),
                });
            }
            b'/' if c.peek(1) == Some(b'*') => {
                let start = c.pos;
                c.bump();
                c.bump();
                let mut depth = 1u32;
                while depth > 0 {
                    match (c.peek(0), c.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            c.bump();
                            c.bump();
                            depth += 1;
                        }
                        (Some(b'*'), Some(b'/')) => {
                            c.bump();
                            c.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            c.bump();
                        }
                        (None, _) => break,
                    }
                }
                out.comments.push(Comment {
                    line,
                    text: String::from_utf8_lossy(&c.src[start..c.pos]).into_owned(),
                });
            }
            b'"' => {
                lex_string(&mut c);
                out.tokens.push(Token { line, tok: Tok::Str });
            }
            b'r' | b'b' if starts_prefixed_literal(&c) => {
                let tok = lex_prefixed_literal(&mut c);
                out.tokens.push(Token { line, tok });
            }
            b'\'' => {
                let tok = lex_quote(&mut c);
                out.tokens.push(Token { line, tok });
            }
            _ if is_ident_start(b) => {
                let start = c.pos;
                while let Some(b) = c.peek(0) {
                    if !is_ident_continue(b) {
                        break;
                    }
                    c.bump();
                }
                let text = String::from_utf8_lossy(&c.src[start..c.pos]).into_owned();
                out.tokens.push(Token {
                    line,
                    tok: Tok::Ident(text),
                });
            }
            _ if b.is_ascii_digit() => {
                // Digits, underscores, and alphanumeric suffixes/hex. `.`
                // is excluded so range syntax (`0..n`) stays punctuation;
                // lints never look at numeric values.
                while let Some(b) = c.peek(0) {
                    if !is_ident_continue(b) {
                        break;
                    }
                    c.bump();
                }
                out.tokens.push(Token { line, tok: Tok::Num });
            }
            _ => {
                c.bump();
                out.tokens.push(Token {
                    line,
                    tok: Tok::Punct(b as char),
                });
            }
        }
    }
    out
}

/// True when the cursor sits on `r"`, `r#"`, `b"`, `b'`, `br"`, `br#"`.
fn starts_prefixed_literal(c: &Cursor) -> bool {
    match c.peek(0) {
        Some(b'r') => {
            let mut i = 1;
            while c.peek(i) == Some(b'#') {
                i += 1;
            }
            i > 1 && c.peek(i) == Some(b'"') || c.peek(1) == Some(b'"')
        }
        Some(b'b') => match c.peek(1) {
            Some(b'"') | Some(b'\'') => true,
            Some(b'r') => {
                let mut i = 2;
                while c.peek(i) == Some(b'#') {
                    i += 1;
                }
                c.peek(i) == Some(b'"')
            }
            _ => false,
        },
        _ => false,
    }
}

/// Consumes `r…`, `b…`, `br…` literals after `starts_prefixed_literal`.
fn lex_prefixed_literal(c: &mut Cursor) -> Tok {
    if c.peek(0) == Some(b'b') {
        c.bump();
        if c.peek(0) == Some(b'\'') {
            return lex_quote(c);
        }
    }
    if c.peek(0) == Some(b'r') {
        c.bump();
        let mut hashes = 0usize;
        while c.peek(0) == Some(b'#') {
            c.bump();
            hashes += 1;
        }
        // Opening quote.
        c.bump();
        loop {
            match c.bump() {
                None => break,
                Some(b'"') => {
                    let mut seen = 0usize;
                    while seen < hashes && c.peek(0) == Some(b'#') {
                        c.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        break;
                    }
                }
                Some(_) => {}
            }
        }
        Tok::Str
    } else {
        lex_string(c);
        Tok::Str
    }
}

/// Consumes a `"…"` string starting at the opening quote.
fn lex_string(c: &mut Cursor) {
    c.bump(); // opening "
    while let Some(b) = c.bump() {
        match b {
            b'\\' => {
                c.bump();
            }
            b'"' => break,
            _ => {}
        }
    }
}

/// Disambiguates `'a'` (char) from `'a` (lifetime), starting at `'`.
fn lex_quote(c: &mut Cursor) -> Tok {
    c.bump(); // opening '
    match c.peek(0) {
        Some(b'\\') => {
            // Escaped char literal: consume until closing quote.
            while let Some(b) = c.bump() {
                if b == b'\\' {
                    c.bump();
                } else if b == b'\'' {
                    break;
                }
            }
            Tok::Char
        }
        Some(b) if is_ident_start(b) => {
            // `'a'` is a char; `'abc` (no closing quote after the ident
            // run) is a lifetime.
            let mut i = 1;
            while let Some(n) = c.peek(i) {
                if !is_ident_continue(n) {
                    break;
                }
                i += 1;
            }
            if c.peek(i) == Some(b'\'') {
                for _ in 0..=i {
                    c.bump();
                }
                Tok::Char
            } else {
                for _ in 0..i {
                    c.bump();
                }
                Tok::Lifetime
            }
        }
        Some(_) => {
            // `'(' `, `'0'` etc.: a one-char literal.
            c.bump();
            if c.peek(0) == Some(b'\'') {
                c.bump();
            }
            Tok::Char
        }
        None => Tok::Lifetime,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = "let x = \"Instant::now()\"; // Instant::now in comment\nfn f() {}";
        let ids = idents(src);
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(ids.contains(&"fn".to_string()));
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("Instant"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = "let s = r#\"unwrap() \"quoted\" \"#; let t = unwrap;";
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|s| *s == "unwrap").count(), 1);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }";
        let toks: Vec<_> = lex(src).tokens.into_iter().map(|t| t.tok).collect();
        assert_eq!(toks.iter().filter(|t| **t == Tok::Lifetime).count(), 2);
        assert_eq!(toks.iter().filter(|t| **t == Tok::Char).count(), 2);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ fn g() {}";
        let ids = idents(src);
        assert_eq!(ids, vec!["fn", "g"]);
    }

    #[test]
    fn line_numbers_are_one_based_and_track_newlines() {
        let src = "fn a() {}\n\nfn b() {}\n";
        let lexed = lex(src);
        let b_tok = lexed
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("b".into()))
            .map(|t| t.line);
        assert_eq!(b_tok, Some(3));
    }

    #[test]
    fn byte_strings_are_strings() {
        let src = "let x = b\"thread_rng\"; let y = br#\"from_entropy\"#;";
        assert!(idents(src).iter().all(|s| s == "let" || s == "x" || s == "y"));
    }

    #[test]
    fn multiline_strings_advance_lines() {
        let src = "let s = \"line1\nline2\";\nfn after() {}";
        let lexed = lex(src);
        let after = lexed
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("after".into()))
            .map(|t| t.line);
        assert_eq!(after, Some(3));
    }
}
