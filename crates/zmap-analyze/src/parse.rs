//! A lightweight item/signature parser on top of the lexer: resolves
//! `fn` items (with body spans and impl owners), trait method
//! declarations, call sites, and macro invocations — enough structure to
//! build an intra-workspace call graph without pulling in `syn`.
//!
//! Like the lexer, the parser is deliberately approximate where lints
//! don't care: generics are skipped by angle-bracket matching, closure
//! bodies belong to their enclosing `fn`, and call resolution is by
//! name (documented per lint). It is exact about the things that make
//! naive scanning wrong: body extents via brace matching, `impl X for Y`
//! owner attribution, and innermost-function attribution of call sites.

use crate::lexer::LexedFile;

/// Keywords that look like calls when followed by `(`.
const NON_CALL_KEYWORDS: [&str; 12] = [
    "if", "while", "for", "match", "return", "fn", "loop", "in", "as", "let", "else", "move",
];

/// One `fn` item: free function, inherent/trait-impl method, or trait
/// declaration (body-less when the trait gives no default).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword.
    pub decl_idx: usize,
    /// Token range `(open_brace, past_close_brace)` of the body; `None`
    /// for body-less trait method declarations.
    pub body: Option<(usize, usize)>,
    /// Enclosing `impl` type name (`impl SpscRing<T>` → `SpscRing`).
    pub owner: Option<String>,
    /// Trait name for `impl Trait for Type` methods.
    pub trait_name: Option<String>,
    /// Whether the item sits inside a `#[cfg(test)]` region / `#[test]`.
    pub in_test: bool,
    /// Whether the doc comments directly above declare a `# Panics`
    /// section (a documented panic contract).
    pub has_panics_doc: bool,
    /// Calls made from this fn's body (innermost attribution).
    pub calls: Vec<CallSite>,
    /// Macro invocations in this fn's body (`name!`).
    pub macros: Vec<MacroSite>,
}

impl FnItem {
    /// True when token index `i` falls inside this fn's body.
    pub fn contains(&self, i: usize) -> bool {
        self.body.is_some_and(|(s, e)| i >= s && i < e)
    }
}

/// One call site inside a fn body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name (`foo` in `foo(…)`, `x.foo(…)`, `T::foo(…)`).
    pub name: String,
    /// 1-based line.
    pub line: u32,
    /// Token index of the callee ident.
    pub idx: usize,
    /// True for `x.foo(…)` method-call syntax.
    pub is_method: bool,
    /// The path qualifier for `Qual::foo(…)` (e.g. `Vec`), if any.
    pub qualifier: Option<String>,
    /// Receiver ident for method calls (`x` in `x.foo(…)`; `self.y.foo`
    /// resolves to `y`, `a[b].foo` to `a`), when recoverable.
    pub receiver: Option<String>,
}

/// One macro invocation (`vec!`, `panic!`, `format!`, …).
#[derive(Debug, Clone)]
pub struct MacroSite {
    pub name: String,
    pub line: u32,
    pub idx: usize,
}

/// The parsed form of one source file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Every fn item, in source order.
    pub fns: Vec<FnItem>,
    /// Method names declared in `trait … { … }` bodies (used to treat
    /// `.name(…)` calls as dynamic dispatch over all impls).
    pub trait_methods: Vec<String>,
}

impl ParsedFile {
    /// Index of the innermost fn whose body contains token `i`.
    pub fn fn_at(&self, i: usize) -> Option<usize> {
        // Innermost = the fn with the latest body start among those
        // containing `i` (nested fns start later than their parent).
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.contains(i))
            .max_by_key(|(_, f)| f.body.map(|(s, _)| s).unwrap_or(0))
            .map(|(k, _)| k)
    }
}

/// Index just past the `}` matching the `{` at `open`.
fn skip_brace(lexed: &LexedFile, open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < lexed.tokens.len() {
        if lexed.punct(i, '{') {
            depth += 1;
        } else if lexed.punct(i, '}') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    lexed.tokens.len()
}

/// Index just past the `]` matching the `[` at `open`.
fn skip_bracket(lexed: &LexedFile, open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < lexed.tokens.len() {
        if lexed.punct(i, '[') {
            depth += 1;
        } else if lexed.punct(i, ']') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    lexed.tokens.len()
}

/// Index just past the `>` matching the `<` at `open` (generics).
fn skip_angles(lexed: &LexedFile, open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < lexed.tokens.len() {
        if lexed.punct(i, '<') {
            depth += 1;
        } else if lexed.punct(i, '>') {
            // `->` arrives as '-' '>' — don't count the arrow's '>'.
            if !(i > 0 && lexed.punct(i - 1, '-')) {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
        } else if lexed.punct(i, '{') || lexed.punct(i, ';') {
            // Unbalanced (e.g. a `<` comparison): bail at item structure.
            return i;
        }
        i += 1;
    }
    lexed.tokens.len()
}

/// Same `#[cfg(test)]`/`#[test]` region detection as lints.rs (shared
/// here so parse results carry test membership).
fn attr_is_cfg_test(lexed: &LexedFile, start: usize, end: usize) -> bool {
    let mut saw_cfg = false;
    for i in start..end {
        match lexed.ident(i) {
            Some("cfg") => saw_cfg = true,
            Some("not") => return false,
            Some("test") | Some("tests") if saw_cfg => return true,
            _ => {}
        }
    }
    false
}

/// Token-index ranges covered by `#[cfg(test)]` items and `#[test]` fns.
pub fn test_regions(lexed: &LexedFile) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < lexed.tokens.len() {
        if lexed.punct(i, '#') && lexed.punct(i + 1, '[') {
            let attr_end = skip_bracket(lexed, i + 1);
            let is_test_attr = attr_is_cfg_test(lexed, i + 1, attr_end)
                || (attr_end == i + 3 && lexed.ident(i + 2) == Some("test"));
            let mut j = attr_end;
            while lexed.punct(j, '#') && lexed.punct(j + 1, '[') {
                j = skip_bracket(lexed, j + 1);
            }
            if is_test_attr {
                let mut k = j;
                while k < lexed.tokens.len() {
                    if lexed.punct(k, ';') {
                        break;
                    }
                    if lexed.punct(k, '{') {
                        let end = skip_brace(lexed, k);
                        regions.push((i, end));
                        i = end;
                        break;
                    }
                    k += 1;
                }
                if i <= k {
                    i = k.max(j);
                }
            }
            i = i.max(attr_end);
            continue;
        }
        i += 1;
    }
    regions
}

fn in_regions(regions: &[(usize, usize)], idx: usize) -> bool {
    regions.iter().any(|&(s, e)| idx >= s && idx < e)
}

/// The impl header's `(owner, trait_name)` given the token index just
/// past `impl` and the index of the opening `{`. The name recorded for
/// each side is the *last* path segment outside generics, so
/// `impl std::fmt::Debug for Foo<T>` yields `(Foo, Debug)`.
fn impl_owner(lexed: &LexedFile, mut i: usize, open: usize) -> (Option<String>, Option<String>) {
    let mut before_for: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut seen_for = false;
    while i < open {
        if lexed.punct(i, '<') {
            i = skip_angles(lexed, i).max(i + 1);
            continue;
        }
        match lexed.ident(i) {
            Some("for") => seen_for = true,
            Some("where") => break,
            Some("dyn") | Some("mut") | Some("impl") => {}
            Some(id) => {
                let slot = if seen_for { &mut after_for } else { &mut before_for };
                *slot = Some(id.to_string());
            }
            None => {}
        }
        i += 1;
    }
    match (before_for, after_for, seen_for) {
        (trait_, Some(owner), true) => (Some(owner), trait_),
        (Some(owner), None, false) => (Some(owner), None),
        _ => (None, None),
    }
}

/// Parses `lexed` into fn items, trait methods, and call sites.
pub fn parse(lexed: &LexedFile) -> ParsedFile {
    let tests = test_regions(lexed);
    let mut out = ParsedFile::default();

    // Pass 1: impl block extents (so fns get owners) + trait bodies.
    // impl_spans: (body_start, body_end, owner, trait_name)
    let mut impl_spans: Vec<(usize, usize, Option<String>, Option<String>)> = Vec::new();
    let mut trait_bodies: Vec<(usize, usize)> = Vec::new();
    let mut i = 0usize;
    while i < lexed.tokens.len() {
        match lexed.ident(i) {
            Some("impl") => {
                let mut k = i + 1;
                while k < lexed.tokens.len() && !lexed.punct(k, '{') && !lexed.punct(k, ';') {
                    if lexed.punct(k, '<') {
                        let nk = skip_angles(lexed, k);
                        k = nk.max(k + 1);
                    } else {
                        k += 1;
                    }
                }
                if lexed.punct(k, '{') {
                    let end = skip_brace(lexed, k);
                    let (owner, trait_name) = impl_owner(lexed, i + 1, k);
                    impl_spans.push((k + 1, end - 1, owner, trait_name));
                }
                i = k + 1;
            }
            Some("trait") => {
                let mut k = i + 1;
                while k < lexed.tokens.len() && !lexed.punct(k, '{') && !lexed.punct(k, ';') {
                    k += 1;
                }
                if lexed.punct(k, '{') {
                    trait_bodies.push((k + 1, skip_brace(lexed, k) - 1));
                    // Don't skip the body: default method bodies inside
                    // still get parsed as fns below.
                }
                i = k + 1;
            }
            _ => i += 1,
        }
    }

    // Pass 2: fn items. Lines holding a `fn` keyword, so a `# Panics`
    // doc block can be tied to the *next* fn only (no leaking past an
    // intervening declaration).
    let fn_lines: Vec<u32> = (0..lexed.tokens.len())
        .filter(|&k| lexed.ident(k) == Some("fn"))
        .map(|k| lexed.line(k))
        .collect();
    let mut i = 0usize;
    while i < lexed.tokens.len() {
        if lexed.ident(i) != Some("fn") {
            i += 1;
            continue;
        }
        let Some(name) = lexed.ident(i + 1) else {
            i += 1;
            continue;
        };
        // Find the body `{` or the trailing `;` (trait declaration).
        let mut k = i + 2;
        let mut body = None;
        while k < lexed.tokens.len() {
            if lexed.punct(k, ';') {
                break;
            }
            if lexed.punct(k, '<') {
                let nk = skip_angles(lexed, k);
                k = nk.max(k + 1);
                continue;
            }
            if lexed.punct(k, '{') {
                body = Some((k, skip_brace(lexed, k)));
                break;
            }
            k += 1;
        }
        let enclosing = impl_spans
            .iter()
            .filter(|(s, e, _, _)| i >= *s && i < *e)
            .max_by_key(|(s, _, _, _)| *s);
        let in_trait = trait_bodies.iter().any(|&(s, e)| i >= s && i < e);
        if in_trait {
            out.trait_methods.push(name.to_string());
        }
        let line = lexed.line(i + 1);
        let has_panics_doc = lexed.comments.iter().any(|c| {
            c.text.contains("# Panics")
                && c.line < line
                && c.line + 20 >= line
                && !fn_lines.iter().any(|&l| l > c.line && l < line)
        });
        out.fns.push(FnItem {
            name: name.to_string(),
            line: lexed.line(i),
            decl_idx: i,
            body: body.map(|(open, end)| (open + 1, end.saturating_sub(1))),
            owner: enclosing.and_then(|(_, _, o, _)| o.clone()),
            trait_name: enclosing.and_then(|(_, _, _, t)| t.clone()),
            in_test: in_regions(&tests, i),
            has_panics_doc,
            calls: Vec::new(),
            macros: Vec::new(),
        });
        i = match body {
            // Step inside the body so nested fns are found too.
            Some((open, _)) => open + 1,
            None => k + 1,
        };
    }

    // Pass 3: call sites and macro invocations, attributed to the
    // innermost containing fn.
    for idx in 0..lexed.tokens.len() {
        let Some(name) = lexed.ident(idx) else { continue };
        if NON_CALL_KEYWORDS.contains(&name) {
            continue;
        }
        // Macro invocation: `name ! ( | [ | {`.
        if lexed.punct(idx + 1, '!')
            && (lexed.punct(idx + 2, '(') || lexed.punct(idx + 2, '[') || lexed.punct(idx + 2, '{'))
        {
            if let Some(f) = out.fn_at(idx) {
                out.fns[f].macros.push(MacroSite {
                    name: name.to_string(),
                    line: lexed.line(idx),
                    idx,
                });
            }
            continue;
        }
        // Call: `name (` — but not a declaration (`fn name(`) and not a
        // tuple-struct pattern context we can't distinguish (accepted
        // over-approximation).
        if !lexed.punct(idx + 1, '(') {
            continue;
        }
        if idx > 0 && lexed.ident(idx - 1) == Some("fn") {
            continue;
        }
        let Some(f) = out.fn_at(idx) else { continue };
        let is_method = idx > 0 && lexed.punct(idx - 1, '.');
        let qualifier = if idx >= 3 && lexed.punct(idx - 1, ':') && lexed.punct(idx - 2, ':') {
            lexed.ident(idx - 3).map(str::to_string)
        } else {
            None
        };
        let receiver = if is_method { receiver_of(lexed, idx - 1) } else { None };
        out.fns[f].calls.push(CallSite {
            name: name.to_string(),
            line: lexed.line(idx),
            idx,
            is_method,
            qualifier,
            receiver,
        });
    }
    out
}

/// The receiver ident of a method call, walking back from the `.` at
/// `dot`: `x.m(…)` → `x`; `self.y.m(…)` → `y`; `a[i].m(…)` → `a`;
/// `f(…).m(…)` → the ident before the call's `(`.
pub fn receiver_of(lexed: &LexedFile, dot: usize) -> Option<String> {
    let mut j = dot;
    loop {
        if j == 0 {
            return None;
        }
        j -= 1;
        if lexed.punct(j, ')') {
            // Walk to the matching `(`, then take the ident before it.
            let mut depth = 0i32;
            loop {
                if lexed.punct(j, ')') {
                    depth += 1;
                } else if lexed.punct(j, '(') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == 0 {
                    return None;
                }
                j -= 1;
            }
            continue; // token before the `(` is the method/fn name
        }
        if lexed.punct(j, ']') {
            let mut depth = 0i32;
            loop {
                if lexed.punct(j, ']') {
                    depth += 1;
                } else if lexed.punct(j, '[') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == 0 {
                    return None;
                }
                j -= 1;
            }
            continue; // token before the `[` is the indexed ident
        }
        return match lexed.ident(j) {
            Some("self") => None, // `self.m(…)`: no useful field name
            Some(id) => Some(id.to_string()),
            None => None,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        parse(&lex(src))
    }

    #[test]
    fn free_fns_and_bodies() {
        let p = parse_src("fn a() { b(); }\nfn b() {}\npub fn c(x: u32) -> u32 { x }\n");
        let names: Vec<_> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert_eq!(p.fns[0].calls.len(), 1);
        assert_eq!(p.fns[0].calls[0].name, "b");
        assert!(p.fns[1].calls.is_empty());
    }

    #[test]
    fn impl_owner_attribution() {
        let src = "impl<T: Clone> SpscRing<T> {\n fn try_push(&self) { self.check(); }\n}\n\
                   impl Transport for SimNet {\n fn send_frame(&self) {}\n}\n";
        let p = parse_src(src);
        assert_eq!(p.fns[0].owner.as_deref(), Some("SpscRing"));
        assert_eq!(p.fns[0].trait_name, None);
        assert_eq!(p.fns[1].owner.as_deref(), Some("SimNet"));
        assert_eq!(p.fns[1].trait_name.as_deref(), Some("Transport"));
    }

    #[test]
    fn trait_methods_and_default_bodies() {
        let src = "trait T {\n fn send(&self) -> Result<(), E>;\n fn helper(&self) { self.send(); }\n}";
        let p = parse_src(src);
        assert_eq!(p.trait_methods, vec!["send", "helper"]);
        let helper = p.fns.iter().find(|f| f.name == "helper").unwrap();
        assert_eq!(helper.calls.len(), 1);
        assert_eq!(helper.calls[0].name, "send");
        let send = p.fns.iter().find(|f| f.name == "send").unwrap();
        assert!(send.body.is_none(), "declaration has no body");
    }

    #[test]
    fn method_receivers_resolve_through_fields_and_indexing() {
        let src = "fn f() { self.tail.load(x); positions[t].store(v); q.pop(); g().h(); }";
        let p = parse_src(src);
        let calls = &p.fns[0].calls;
        let by_name = |n: &str| calls.iter().find(|c| c.name == n).unwrap();
        assert_eq!(by_name("load").receiver.as_deref(), Some("tail"));
        assert_eq!(by_name("store").receiver.as_deref(), Some("positions"));
        assert_eq!(by_name("pop").receiver.as_deref(), Some("q"));
        assert_eq!(
            by_name("h").receiver.as_deref(),
            Some("g"),
            "call-result receiver resolves to the producing call's name"
        );
    }

    #[test]
    fn qualified_calls_carry_their_qualifier() {
        let src = "fn f() { Vec::with_capacity(8); std::mem::take(x); plain(); }";
        let p = parse_src(src);
        let calls = &p.fns[0].calls;
        assert_eq!(
            calls.iter().find(|c| c.name == "with_capacity").unwrap().qualifier.as_deref(),
            Some("Vec")
        );
        assert_eq!(
            calls.iter().find(|c| c.name == "take").unwrap().qualifier.as_deref(),
            Some("mem")
        );
        assert_eq!(calls.iter().find(|c| c.name == "plain").unwrap().qualifier, None);
    }

    #[test]
    fn macros_are_separated_from_calls() {
        let src = "fn f() { vec![1]; panic!(\"x\"); format!(\"y\"); real(); }";
        let p = parse_src(src);
        let macros: Vec<_> = p.fns[0].macros.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(macros, vec!["vec", "panic", "format"]);
        assert_eq!(p.fns[0].calls.len(), 1);
        assert_eq!(p.fns[0].calls[0].name, "real");
    }

    #[test]
    fn nested_fns_get_innermost_attribution() {
        let src = "fn outer() { inner_call(); fn nested() { deep_call(); } }";
        let p = parse_src(src);
        let outer = p.fns.iter().find(|f| f.name == "outer").unwrap();
        let nested = p.fns.iter().find(|f| f.name == "nested").unwrap();
        assert_eq!(outer.calls.iter().map(|c| c.name.as_str()).collect::<Vec<_>>(), vec!["inner_call"]);
        assert_eq!(nested.calls.iter().map(|c| c.name.as_str()).collect::<Vec<_>>(), vec!["deep_call"]);
    }

    #[test]
    fn test_region_membership_and_panics_doc() {
        let src = "/// Checks a thing.\n/// # Panics\n/// Panics when x is 0.\nfn checked(x: u32) { assert!(x > 0); }\n\
                   #[cfg(test)]\nmod tests {\n fn t() {}\n}\n";
        let p = parse_src(src);
        let checked = p.fns.iter().find(|f| f.name == "checked").unwrap();
        assert!(checked.has_panics_doc);
        assert!(!checked.in_test);
        let t = p.fns.iter().find(|f| f.name == "t").unwrap();
        assert!(t.in_test);
        assert!(!t.has_panics_doc);
    }

    #[test]
    fn generic_signatures_do_not_confuse_body_detection() {
        let src = "fn f<T: Iterator<Item = u8>>(x: T) -> Vec<u8> where T: Clone { x.collect() }";
        let p = parse_src(src);
        assert_eq!(p.fns.len(), 1);
        assert!(p.fns[0].body.is_some());
        assert_eq!(p.fns[0].calls[0].name, "collect");
    }
}
