//! Deterministic interleaving checker for the lock-free TX pipeline.
//!
//! The static lints in `zmap-analyze` check that every atomic site
//! *declares* its acquire/release protocol; this crate checks that the
//! protocol actually *works* by executing the real `SpscRing` and
//! `ShutdownToken` code under every thread schedule up to a bound.
//!
//! Three pieces:
//!
//! - [`ShimAtomicU64`] / [`ShimAtomicBool`] — drop-in stand-ins for the
//!   `std` atomics. Outside a controlled run they delegate straight to
//!   the wrapped atomic (one thread-local read of overhead), so the
//!   regular unit and stress tests of the shimmed types are unaffected.
//!   Inside a controlled run every operation becomes a *yield point*:
//!   the thread parks, the scheduler decides who advances, and the
//!   operation is logged as an [`Event`].
//! - A cooperative scheduler: threads run one at a time, handing
//!   control back at each atomic operation. Serializing execution this
//!   way explores the sequentially-consistent interleavings of the
//!   atomic operations — every ordering bug that is a *wrong protocol*
//!   (stale read guarding a slot, missed close, double pop) appears in
//!   some interleaving; only hardware-level reordering is out of scope.
//! - [`explore`] — drives the scheduler through schedules: exhaustive
//!   (depth-first over scheduling choices) up to [`Config::depth`]
//!   decisions, seeded-random beyond, so short prefixes are covered
//!   completely and long tails are still probed, deterministically.
//!
//! Liveness is checked by budget: a schedule that exceeds
//! [`Config::max_steps`] atomic operations is counted in
//! [`Stats::cap_exceeded`] and the run is released to free execution so
//! the process is never wedged. Tests assert the counter stays zero —
//! "close/drain terminates under every explored schedule".

use std::cell::Cell;
use std::sync::atomic::{AtomicBool as StdAtomicBool, AtomicU64 as StdAtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};

// ---------------------------------------------------------------------------
// Event log

/// Kind of atomic operation a shim performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// An atomic load.
    Load,
    /// An atomic store.
    Store,
}

/// One logged atomic operation from a controlled run.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Index of the virtual thread that performed the operation.
    pub thread: usize,
    /// Load or store.
    pub op: Op,
    /// The memory ordering the call site requested.
    pub ordering: Ordering,
    /// The value loaded or stored (bools widen to 0/1).
    pub value: u64,
}

// ---------------------------------------------------------------------------
// Shared scheduler session (one controlled run at a time, process-wide)

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Executing thread-local code between yield points.
    Running,
    /// Parked at an atomic operation, waiting for a grant.
    AtYield,
    /// Body returned.
    Finished,
}

#[derive(Default)]
struct SessionState {
    active: bool,
    /// Set when the step budget is exhausted: every yield point becomes
    /// a pass-through so the threads can finish on their own.
    free_run: bool,
    status: Vec<Status>,
    granted: Vec<bool>,
    steps: usize,
    events: Vec<Event>,
}

struct Session {
    state: Mutex<SessionState>,
    cv: Condvar,
}

fn session() -> &'static Session {
    static SESSION: OnceLock<Session> = OnceLock::new();
    SESSION.get_or_init(|| Session {
        state: Mutex::new(SessionState::default()),
        cv: Condvar::new(),
    })
}

/// Serializes whole explorations: `cargo test` runs tests in parallel,
/// and the session above is process-global.
fn explorer_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

thread_local! {
    /// The virtual-thread index of the current OS thread, when it is
    /// one of a controlled run's workers.
    static TID: Cell<Option<usize>> = const { Cell::new(None) };
}

fn lock_state() -> MutexGuard<'static, SessionState> {
    session().state.lock().unwrap_or_else(|p| p.into_inner())
}

/// The shim hot path: outside a controlled run, perform the operation
/// directly; inside one, park at the yield point, perform the operation
/// once granted, and log it.
fn step(op: Op, ordering: Ordering, action: impl FnOnce() -> u64) -> u64 {
    let Some(tid) = TID.with(Cell::get) else {
        return action();
    };
    let s = session();
    let mut st = lock_state();
    if !st.active || st.free_run {
        drop(st);
        return action();
    }
    st.status[tid] = Status::AtYield;
    s.cv.notify_all();
    loop {
        if st.free_run {
            st.status[tid] = Status::Running;
            drop(st);
            return action();
        }
        if st.granted[tid] {
            break;
        }
        st = s.cv.wait(st).unwrap_or_else(|p| p.into_inner());
    }
    // The controller already flipped this thread's status to Running at
    // grant time — atomically with the grant decision — so it can never
    // observe an all-parked state and grant two threads at once.
    st.granted[tid] = false;
    // The operation runs under the session lock: execution is serialized
    // by design, so this adds no restriction, and it keeps the log order
    // identical to the execution order.
    let value = action();
    st.steps += 1;
    st.events.push(Event { thread: tid, op, ordering, value });
    value
}

// ---------------------------------------------------------------------------
// Atomic shims

/// `AtomicU64` stand-in that yields to the scheduler at every operation
/// during a controlled run and is a thin pass-through otherwise.
#[derive(Debug, Default)]
pub struct ShimAtomicU64 {
    inner: StdAtomicU64,
}

impl ShimAtomicU64 {
    /// A shim holding `v`.
    pub fn new(v: u64) -> Self {
        ShimAtomicU64 { inner: StdAtomicU64::new(v) }
    }

    /// Atomic load with `ordering`, a yield point under the scheduler.
    pub fn load(&self, ordering: Ordering) -> u64 {
        step(Op::Load, ordering, || self.inner.load(ordering))
    }

    /// Atomic store with `ordering`, a yield point under the scheduler.
    pub fn store(&self, v: u64, ordering: Ordering) {
        step(Op::Store, ordering, || {
            self.inner.store(v, ordering);
            v
        });
    }
}

/// `AtomicBool` stand-in; see [`ShimAtomicU64`].
#[derive(Debug, Default)]
pub struct ShimAtomicBool {
    inner: StdAtomicBool,
}

impl ShimAtomicBool {
    /// A shim holding `v`.
    pub fn new(v: bool) -> Self {
        ShimAtomicBool { inner: StdAtomicBool::new(v) }
    }

    /// Atomic load with `ordering`, a yield point under the scheduler.
    pub fn load(&self, ordering: Ordering) -> bool {
        step(Op::Load, ordering, || u64::from(self.inner.load(ordering))) != 0
    }

    /// Atomic store with `ordering`, a yield point under the scheduler.
    pub fn store(&self, v: bool, ordering: Ordering) {
        step(Op::Store, ordering, || {
            self.inner.store(v, ordering);
            u64::from(v)
        });
    }
}

// ---------------------------------------------------------------------------
// Schedule enumeration

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Source of scheduling decisions for one execution: the first
/// [`Config::depth`] branching decisions replay/extend a depth-first
/// choice stack (exhaustive enumeration), later ones are seeded-random.
struct ChoiceSource {
    /// `(chosen, options)` per recorded branching decision.
    stack: Vec<(usize, usize)>,
    cursor: usize,
    depth: usize,
    seed: u64,
    rng: u64,
    execution: u64,
}

impl ChoiceSource {
    fn new(depth: usize, seed: u64) -> Self {
        ChoiceSource { stack: Vec::new(), cursor: 0, depth, seed, rng: seed, execution: 0 }
    }

    /// Picks one of `options` (> 0). Forced choices (1 option) are not
    /// recorded — only real branch points spend exploration depth.
    fn next(&mut self, options: usize) -> usize {
        if options <= 1 {
            return 0;
        }
        if self.cursor < self.stack.len() {
            let c = self.stack[self.cursor].0;
            self.cursor += 1;
            c.min(options - 1)
        } else if self.stack.len() < self.depth {
            self.stack.push((0, options));
            self.cursor += 1;
            0
        } else {
            (splitmix64(&mut self.rng) % options as u64) as usize
        }
    }

    /// Advances to the next schedule (depth-first). Returns `false`
    /// when the bounded space is exhausted.
    fn advance(&mut self) -> bool {
        self.execution += 1;
        // Random choices beyond the stack must differ per execution yet
        // stay reproducible: reseed from (seed, execution index).
        self.rng = self.seed ^ splitmix64(&mut { self.execution });
        self.cursor = 0;
        while let Some(&(chosen, options)) = self.stack.last() {
            if chosen + 1 < options {
                self.stack.last_mut().unwrap().0 += 1;
                return true;
            }
            self.stack.pop();
        }
        false
    }
}

// ---------------------------------------------------------------------------
// Exploration driver

/// Bounds for one [`explore`] call.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Branching decisions enumerated exhaustively (depth-first) before
    /// falling back to seeded-random scheduling. The schedule count is
    /// at most `threads^depth`.
    pub depth: usize,
    /// Seed for the random tail of each schedule.
    pub seed: u64,
    /// Atomic-operation budget per schedule; exceeding it counts as a
    /// liveness violation ([`Stats::cap_exceeded`]) and releases the
    /// threads to free execution.
    pub max_steps: usize,
    /// Hard cap on explored schedules, a guard against misconfigured
    /// depth.
    pub max_schedules: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config { depth: 8, seed: 0x5EED_2A94, max_steps: 20_000, max_schedules: 4096 }
    }
}

/// What an [`explore`] call did.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    /// Schedules executed.
    pub schedules: usize,
    /// Total atomic operations across all schedules.
    pub steps: usize,
    /// Schedules that blew [`Config::max_steps`] — liveness failures.
    pub cap_exceeded: usize,
    /// `true` when the depth-bounded space was fully enumerated (the
    /// run ended by exhaustion, not by [`Config::max_schedules`]).
    pub exhausted: bool,
}

/// Handle the per-schedule closure uses to run virtual threads and
/// inspect the resulting event log.
pub struct Sched<'c> {
    choices: &'c mut ChoiceSource,
    max_steps: usize,
    cap_exceeded: bool,
    steps: usize,
    events: Vec<Event>,
}

impl Sched<'_> {
    /// Runs `bodies` as virtual threads under the scheduler until all
    /// finish. Every atomic operation on a shimmed type is a scheduling
    /// point; between points exactly one thread executes.
    pub fn run<'env>(&mut self, bodies: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        let n = bodies.len();
        assert!(n > 0, "a schedule needs at least one thread");
        {
            let mut st = lock_state();
            assert!(!st.active, "one controlled run at a time");
            st.active = true;
            st.free_run = false;
            st.status = vec![Status::Running; n];
            st.granted = vec![false; n];
            st.steps = 0;
            st.events.clear();
        }
        std::thread::scope(|scope| {
            for (tid, body) in bodies.into_iter().enumerate() {
                scope.spawn(move || {
                    TID.with(|t| t.set(Some(tid)));
                    body();
                    TID.with(|t| t.set(None));
                    let mut st = lock_state();
                    st.status[tid] = Status::Finished;
                    session().cv.notify_all();
                });
            }
            self.controller();
        });
        let mut st = lock_state();
        st.active = false;
        self.steps = st.steps;
        self.events = std::mem::take(&mut st.events);
    }

    /// The scheduling loop: wait until no thread is between yield
    /// points, pick one parked thread, grant it one atomic operation.
    fn controller(&mut self) {
        let s = session();
        loop {
            let mut st = lock_state();
            while st.status.contains(&Status::Running) {
                st = s.cv.wait(st).unwrap_or_else(|p| p.into_inner());
            }
            if st.steps >= self.max_steps {
                // Liveness budget blown: record it and let the threads
                // finish unscheduled so join() below terminates.
                self.cap_exceeded = true;
                st.free_run = true;
                s.cv.notify_all();
                return;
            }
            let ready: Vec<usize> = (0..st.status.len())
                .filter(|&t| st.status[t] == Status::AtYield)
                .collect();
            if ready.is_empty() {
                return; // all finished
            }
            let pick = ready[self.choices.next(ready.len())];
            st.granted[pick] = true;
            st.status[pick] = Status::Running;
            s.cv.notify_all();
        }
    }

    /// Event log of the last [`run`](Self::run), in execution order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }
}

/// Explores thread schedules: calls `schedule` once per schedule until
/// the depth-bounded space is exhausted or `config.max_schedules` is
/// hit. The closure builds fresh state, calls [`Sched::run`], and
/// asserts its invariants; panics propagate to the caller with the
/// schedule already counted in the returned [`Stats`].
pub fn explore(config: Config, mut schedule: impl FnMut(&mut Sched)) -> Stats {
    let _guard = explorer_lock().lock().unwrap_or_else(|p| p.into_inner());
    let mut choices = ChoiceSource::new(config.depth, config.seed);
    let mut stats = Stats::default();
    loop {
        let mut sched = Sched {
            choices: &mut choices,
            max_steps: config.max_steps,
            cap_exceeded: false,
            steps: 0,
            events: Vec::new(),
        };
        schedule(&mut sched);
        stats.schedules += 1;
        stats.steps += sched.steps;
        stats.cap_exceeded += usize::from(sched.cap_exceeded);
        if stats.schedules >= config.max_schedules {
            return stats;
        }
        if !choices.advance() {
            stats.exhausted = true;
            return stats;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};

    #[test]
    fn shims_pass_through_outside_a_controlled_run() {
        let u = ShimAtomicU64::new(7);
        assert_eq!(u.load(Acquire), 7);
        u.store(9, Release);
        assert_eq!(u.load(Relaxed), 9);
        let b = ShimAtomicBool::new(false);
        b.store(true, Release);
        assert!(b.load(Acquire));
    }

    #[test]
    fn choice_source_enumerates_binary_tree_exhaustively() {
        // Depth 3 over a constant 2-way branch: exactly 2^3 distinct
        // prefixes, visited once each, in depth-first order.
        let mut c = ChoiceSource::new(3, 42);
        let mut seen = Vec::new();
        loop {
            let prefix: Vec<usize> = (0..3).map(|_| c.next(2)).collect();
            seen.push(prefix);
            if !c.advance() {
                break;
            }
        }
        assert_eq!(seen.len(), 8);
        let mut sorted = seen.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 8, "every prefix distinct");
    }

    #[test]
    fn forced_choices_do_not_spend_depth() {
        let mut c = ChoiceSource::new(2, 1);
        assert_eq!(c.next(1), 0);
        assert_eq!(c.next(1), 0);
        assert_eq!(c.stack.len(), 0);
        c.next(3);
        assert_eq!(c.stack.len(), 1);
    }

    #[test]
    fn explore_is_deterministic_across_runs() {
        let run = || {
            let mut orders = Vec::new();
            let stats = explore(
                Config { depth: 4, seed: 99, max_steps: 1000, max_schedules: 64 },
                |sched| {
                    let x = ShimAtomicU64::new(0);
                    let y = ShimAtomicU64::new(0);
                    sched.run(vec![
                        Box::new(|| {
                            x.store(1, Release);
                            y.load(Acquire);
                        }),
                        Box::new(|| {
                            y.store(1, Release);
                            x.load(Acquire);
                        }),
                    ]);
                    orders.push(
                        sched.events().iter().map(|e| (e.thread, e.op, e.value)).collect::<Vec<_>>(),
                    );
                },
            );
            (stats.schedules, stats.cap_exceeded, orders)
        };
        let (a_n, a_cap, a_orders) = run();
        let (b_n, b_cap, b_orders) = run();
        assert_eq!(a_n, b_n);
        assert_eq!(a_cap, 0);
        assert_eq!(b_cap, 0);
        assert_eq!(a_orders, b_orders, "same seed+depth, same schedules");
        assert!(a_n > 1, "two racing threads must branch");
    }

    #[test]
    fn scheduler_finds_both_outcomes_of_a_store_load_race() {
        // Classic litmus: with thread A doing `x=1` and thread B loading
        // x, exhaustive exploration must witness B seeing both 0 and 1.
        let mut seen = [false, false];
        explore(
            Config { depth: 4, seed: 7, max_steps: 100, max_schedules: 64 },
            |sched| {
                let x = ShimAtomicU64::new(0);
                let observed = ShimAtomicU64::new(u64::MAX);
                sched.run(vec![
                    Box::new(|| x.store(1, Release)),
                    Box::new(|| {
                        let v = x.load(Acquire);
                        observed.store(v, Release);
                    }),
                ]);
                seen[observed.load(Acquire) as usize] = true;
            },
        );
        assert!(seen[0], "some schedule runs the load first");
        assert!(seen[1], "some schedule runs the store first");
    }

    #[test]
    fn step_cap_releases_the_run_instead_of_hanging() {
        let stats = explore(
            Config { depth: 2, seed: 3, max_steps: 16, max_schedules: 2 },
            |sched| {
                let done = ShimAtomicBool::new(false);
                let flag = ShimAtomicBool::new(false);
                sched.run(vec![
                    // Spins far past the 16-step budget before signaling.
                    Box::new(|| {
                        for _ in 0..64 {
                            flag.load(Relaxed);
                        }
                        flag.store(true, Release);
                    }),
                    Box::new(|| {
                        while !flag.load(Acquire) {}
                        done.store(true, Release);
                    }),
                ]);
                assert!(done.load(Acquire), "free-run lets the threads finish");
            },
        );
        assert!(stats.cap_exceeded >= 1, "the budget violation is recorded");
    }
}
