//! The JSON report is a machine interface (CI uploads it as an
//! artifact): its field set, workspace-relative paths, stable lint IDs,
//! and ordering — identical to the text report — are pinned here by a
//! byte-exact golden file.
//!
//! Regenerate after an intentional change with:
//! `cargo run -p zmap-analyze -- check --json \
//!    --root crates/zmap-analyze/tests/fixtures/atomics_discipline \
//!    > crates/zmap-analyze/tests/golden/atomics_discipline.json`

use std::path::PathBuf;
use zmap_analyze::{analyze_root, baseline, report};

fn manifest(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(rel)
}

#[test]
fn json_report_matches_the_golden_file() {
    let findings = analyze_root(&manifest("tests/fixtures/atomics_discipline")).unwrap();
    let applied = baseline::apply(findings, &[]);
    let json = report::json(&applied);
    let golden =
        std::fs::read_to_string(manifest("tests/golden/atomics_discipline.json")).unwrap();
    assert_eq!(
        json.trim(),
        golden.trim(),
        "JSON schema or content drifted; if intentional, regenerate the \
         golden file (command in this file's header)"
    );
}

#[test]
fn json_and_text_reports_list_findings_in_the_same_order() {
    let findings = analyze_root(&manifest("tests/fixtures/atomics_discipline")).unwrap();
    let applied = baseline::apply(findings, &[]);
    let v: serde_json::Value = serde_json::from_str(&report::json(&applied)).unwrap();
    let from_json: Vec<String> = v["findings"]
        .as_array()
        .unwrap()
        .iter()
        .map(|f| {
            format!(
                "{}:{}: [{}]",
                f["path"].as_str().unwrap(),
                f["line"],
                f["lint"].as_str().unwrap()
            )
        })
        .collect();
    let text = report::text(&applied);
    let from_text: Vec<String> = text
        .lines()
        .filter(|l| l.starts_with("crates/"))
        .map(|l| {
            let (span, _) = l.split_once("] ").unwrap();
            format!("{span}]")
        })
        .collect();
    assert!(!from_json.is_empty());
    assert_eq!(from_json, from_text, "the two renderings must sort identically");
}

#[test]
fn json_findings_carry_the_stable_fields() {
    let findings = analyze_root(&manifest("tests/fixtures/atomics_discipline")).unwrap();
    let applied = baseline::apply(findings, &[]);
    let v: serde_json::Value = serde_json::from_str(&report::json(&applied)).unwrap();
    for f in v["findings"].as_array().unwrap() {
        let path = f["path"].as_str().expect("path is a string");
        assert!(
            path.starts_with("crates/") && !path.starts_with('/'),
            "workspace-relative path, not absolute: {path}"
        );
        assert!(f["lint"].is_string(), "stable lint ID");
        assert!(f["line"].is_u64());
        assert!(f["message"].is_string());
    }
}
