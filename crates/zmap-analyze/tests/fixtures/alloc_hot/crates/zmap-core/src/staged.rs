//! Fixture: alloc-in-hot-path — an allocation one call-graph hop below
//! a hot root fires; the same allocation in an unreachable fn stays
//! quiet.

pub struct StagedRender {
    out: Vec<u8>,
}

impl StagedRender {
    pub fn push(&mut self, frame: &[u8]) {
        self.stage(frame);
    }

    fn stage(&mut self, frame: &[u8]) {
        let copy = frame.to_vec();
        self.out.extend_from_slice(&copy);
    }

    pub fn label(&self) -> String {
        format!("staged:{}", self.out.len())
    }
}
