//! Fixture: atomics-ordering-discipline positive and negative cases.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Seq {
    // [atomics] good: Relaxed or Acquire load by either side,
    // Release store to publish.
    good: AtomicU64,
    bad: AtomicU64,
}

impl Seq {
    pub fn covered(&self) -> u64 {
        self.good.load(Ordering::Acquire)
    }

    pub fn uncovered(&self) -> u64 {
        self.bad.load(Ordering::Acquire)
    }

    pub fn seqcst(&self) {
        self.good.store(1, Ordering::SeqCst);
    }

    pub fn guarded(&self, slots: &[u64]) -> u64 {
        let i = self.good.load(Ordering::Acquire) as usize;
        slots[i % 4]
    }

    pub fn unguarded(&self, slots: &[u64]) -> u64 {
        let i = self.good.load(Ordering::Relaxed) as usize;
        slots[i % 4]
    }
}
