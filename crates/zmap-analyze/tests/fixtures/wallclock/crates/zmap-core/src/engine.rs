//! Fixture: wall-clock reads inside the engine.
use std::time::{Instant, SystemTime};

pub fn t0() -> Instant {
    Instant::now()
}

pub fn wall() -> SystemTime {
    SystemTime::now()
}
