//! Fixture: the CLI front-end may read the wall clock.
use std::time::Instant;

pub fn started() -> Instant {
    Instant::now()
}
