//! Fixture: acquires the same two locks in the opposite order from
//! parallel.rs — the classic ABBA deadlock shape.

pub fn reversed(tx: &Tx) {
    let _stats = tx.stats.lock().unwrap_or_else(|p| p.into_inner());
    let _log = tx.log.lock().unwrap_or_else(|p| p.into_inner());
}
