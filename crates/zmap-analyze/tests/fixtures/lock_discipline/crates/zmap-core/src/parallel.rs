//! Fixture: lock-discipline — guard held across a send, drop-first and
//! through-the-guard negatives, and an acquisition order that the
//! sibling log.rs fixture reverses.

pub fn hold_across_send(tx: &Tx, link: &Link) {
    let g = tx.world.lock().unwrap_or_else(|p| p.into_inner());
    link.send_batch(&[*g]);
}

pub fn drop_before_send(tx: &Tx, link: &Link) {
    let g = tx.world.lock().unwrap_or_else(|p| p.into_inner());
    let v = *g;
    drop(g);
    link.send_batch(&[v]);
}

pub fn through_guard(tx: &Tx) {
    let world = tx.world.lock().unwrap_or_else(|p| p.into_inner());
    world.send_batch(&[1]);
}

pub fn ordered(tx: &Tx) {
    let _log = tx.log.lock().unwrap_or_else(|p| p.into_inner());
    let _stats = tx.stats.lock().unwrap_or_else(|p| p.into_inner());
}
