//! Fixture: panic-reachability — an unwrap one hop below an engine
//! entry point fires; a documented `# Panics` contract and a fn no
//! entry point reaches stay quiet.

pub struct Engine;

impl Engine {
    pub fn run(&self) -> u64 {
        self.step()
    }

    fn step(&self) -> u64 {
        let v: Option<u64> = None;
        v.unwrap()
    }

    /// Escape hatch: the abort below is part of the documented contract.
    ///
    /// # Panics
    /// Panics whenever called; the fixture wants it that way.
    pub fn run_with(&self) {
        panic!("documented contract");
    }
}

pub fn helper() -> u64 {
    todo!()
}
