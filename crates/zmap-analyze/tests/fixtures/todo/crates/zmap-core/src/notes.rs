//! Fixture: deferred-work markers in comments.

pub fn shard_count() -> u32 {
    // TODO: derive from the core count.
    8
}

/* FIXME: replace this whole module */
pub fn placeholder() {}
