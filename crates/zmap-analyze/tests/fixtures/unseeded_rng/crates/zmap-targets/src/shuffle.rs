//! Fixture: OS entropy in a randomized path.

pub fn draw() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

pub fn seeded_badly() -> u64 {
    let mut rng = StdRng::from_entropy();
    rng.gen()
}
