//! Fixture: counters breaking each of the three wiring rules.

pub struct Counters {
    pub ok_one: u64,
    pub missing_status: u64,
    pub unpopulated: u64,
    pub missing_cli: u64,
}
