//! Fixture: mirrors most — but not all — of the Counters registry.

pub struct StatusUpdate {
    pub ok_one: u64,
    pub unpopulated: u64,
    pub missing_cli: u64,
}

pub fn tick(c: &Counters, s: &mut StatusUpdate) {
    s.ok_one = c.ok_one;
    s.missing_cli = c.missing_cli;
}
