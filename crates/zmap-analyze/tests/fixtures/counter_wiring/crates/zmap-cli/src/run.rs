//! Fixture: the status line renders only one of the counters.

pub fn render(s: &StatusUpdate) -> String {
    format!("sent {}", s.ok_one)
}
