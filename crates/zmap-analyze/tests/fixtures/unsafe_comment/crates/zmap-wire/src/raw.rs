//! Fixture: undocumented `unsafe`.

pub fn read_u32(p: *const u32) -> u32 {
    unsafe { *p }
}

pub fn read_u64(p: *const u64) -> u64 {
    // SAFETY: caller guarantees p is valid, aligned, and initialized.
    unsafe { *p }
}
