//! Fixture: fallible send/recv trait methods without `#[must_use]`.

pub trait Wire {
    fn now(&self) -> u64;

    fn send_frame(&mut self, frame: &[u8]) -> Result<(), Error>;

    #[must_use = "a dropped receive error loses responses"]
    fn recv_frames(&mut self) -> Result<Vec<u8>, Error>;

    fn recv_poll(&mut self) -> Result<usize, Error>;

    fn send_count(&self) -> u64;
}
