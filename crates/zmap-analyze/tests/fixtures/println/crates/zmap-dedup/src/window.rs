//! Fixture: console output from library code.

pub fn note(hits: u64) {
    println!("hits so far: {hits}");
}

pub fn spill(v: &[u8]) {
    dbg!(v);
}
