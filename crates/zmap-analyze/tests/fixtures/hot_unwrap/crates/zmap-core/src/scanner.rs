//! Fixture: panics on the TX/RX hot path.

pub fn drain(queue: &mut Vec<u8>) -> u8 {
    queue.pop().unwrap()
}

pub fn peek(queue: &[u8]) -> u8 {
    *queue.first().expect("nonempty")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_here_is_exempt() {
        let v: Option<u8> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
