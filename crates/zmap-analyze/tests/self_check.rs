//! The workspace must pass its own analyzer: `check --deny` exits 0
//! with an EMPTY baseline. The suppression file shrank to nothing over
//! successive PRs; these tests keep it that way — any new finding must
//! be fixed in the code, not suppressed.

use std::path::{Path, PathBuf};
use std::process::Command;
use zmap_analyze::{analyze_root, baseline};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/zmap-analyze sits two levels below the root")
        .to_path_buf()
}

#[test]
fn workspace_is_clean_under_the_shipped_baseline() {
    let root = workspace_root();
    let findings = analyze_root(&root).expect("walk the workspace");
    let text = std::fs::read_to_string(root.join("analyze-baseline.toml"))
        .expect("the baseline ships with the repo");
    let suppressions = baseline::parse(&text).expect("baseline parses");
    let applied = baseline::apply(findings, &suppressions);
    assert!(
        applied.kept.is_empty(),
        "unbaselined findings — fix them or baseline them with a reason:\n{}",
        zmap_analyze::report::text(&applied)
    );
    assert!(
        applied.stale.is_empty(),
        "stale baseline entries — the finding is gone, delete the entry:\n{}",
        zmap_analyze::report::text(&applied)
    );
    assert_eq!(
        applied.suppressed, 0,
        "the baseline is empty and must stay empty — fix findings in \
         the code instead of suppressing them"
    );
    assert!(
        suppressions.is_empty(),
        "no entries may be added to analyze-baseline.toml"
    );
}

fn run_check(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_zmap-analyze"))
        .args(args)
        .output()
        .expect("spawn the analyzer binary")
}

#[test]
fn deny_exits_zero_on_the_workspace() {
    let root = workspace_root();
    let out = run_check(&["check", "--deny", "--root", root.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn deny_exits_nonzero_when_violations_are_introduced() {
    // Point the analyzer at a fixture tree full of violations, with no
    // baseline: this is what a regression looks like in CI.
    let bad = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/hot_unwrap");
    let out = run_check(&["check", "--deny", "--root", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "findings under --deny exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no-unwrap-hot-path"), "{stdout}");
}

#[test]
fn json_report_is_machine_readable() {
    let root = workspace_root();
    let out = run_check(&["check", "--json", "--root", root.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let v: serde_json::Value =
        serde_json::from_str(stdout.trim()).expect("valid JSON on stdout");
    assert_eq!(v["findings"].as_array().map(Vec::len), Some(0));
    assert_eq!(v["stale_baseline"].as_array().map(Vec::len), Some(0));
    assert_eq!(v["suppressed"].as_u64(), Some(0));
}
