//! Each lint fires on its fixture tree at the exact `file:line`.
//!
//! The trees under `tests/fixtures/` are tiny fake workspaces (never
//! compiled, never walked by the real `check` run — the walker skips
//! directories named `fixtures`). Every test asserts the *complete*
//! finding set for its tree, so both false negatives and accidental
//! extra findings fail here.

use std::path::PathBuf;
use zmap_analyze::analyze_root;
use zmap_analyze::lints::Finding;

fn fixture(case: &str) -> Vec<Finding> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(case);
    analyze_root(&root).unwrap_or_else(|e| panic!("walking fixture {case}: {e}"))
}

/// `(path, line)` spans of every finding for `lint`, in report order.
fn spans(findings: &[Finding], lint: &str) -> Vec<(String, u32)> {
    findings
        .iter()
        .filter(|f| f.lint == lint)
        .map(|f| (f.path.clone(), f.line))
        .collect()
}

#[test]
fn hot_path_unwrap_and_expect_fire_outside_tests() {
    let f = fixture("hot_unwrap");
    assert_eq!(
        spans(&f, "no-unwrap-hot-path"),
        vec![
            ("crates/zmap-core/src/scanner.rs".to_string(), 4),
            ("crates/zmap-core/src/scanner.rs".to_string(), 8),
        ],
        "unwrap at L4 and expect at L8 fire; the unwrap in #[cfg(test)] is exempt"
    );
    assert_eq!(f.len(), 2, "no other lint fires on this tree: {f:?}");
}

#[test]
fn wallclock_reads_fire_in_engine_but_not_cli() {
    let f = fixture("wallclock");
    assert_eq!(
        spans(&f, "no-wallclock-in-engine"),
        vec![
            ("crates/zmap-core/src/engine.rs".to_string(), 5),
            ("crates/zmap-core/src/engine.rs".to_string(), 9),
        ],
        "Instant::now at L5 and SystemTime::now at L9; the zmap-cli file is exempt"
    );
    assert_eq!(f.len(), 2, "{f:?}");
}

#[test]
fn os_entropy_draws_fire() {
    let f = fixture("unseeded_rng");
    assert_eq!(
        spans(&f, "no-unseeded-rng"),
        vec![
            ("crates/zmap-targets/src/shuffle.rs".to_string(), 4),
            ("crates/zmap-targets/src/shuffle.rs".to_string(), 9),
        ],
        "thread_rng at L4 and from_entropy at L9"
    );
    assert_eq!(f.len(), 2, "{f:?}");
}

#[test]
fn fallible_send_recv_without_must_use_fires() {
    let f = fixture("must_use");
    assert_eq!(
        spans(&f, "must-use-fallible-send"),
        vec![
            ("crates/zmap-core/src/transport.rs".to_string(), 6),
            ("crates/zmap-core/src/transport.rs".to_string(), 11),
        ],
        "send_frame (L6) and recv_poll (L11) return Result without #[must_use]; \
         the attributed recv_frames and the infallible send_count are clean"
    );
    assert_eq!(f.len(), 2, "{f:?}");
}

#[test]
fn console_output_in_library_code_fires() {
    let f = fixture("println");
    assert_eq!(
        spans(&f, "no-println-outside-cli"),
        vec![
            ("crates/zmap-dedup/src/window.rs".to_string(), 4),
            ("crates/zmap-dedup/src/window.rs".to_string(), 8),
        ],
        "println! at L4 and dbg! at L8"
    );
    assert_eq!(f.len(), 2, "{f:?}");
}

#[test]
fn undocumented_unsafe_fires_and_safety_comment_clears() {
    let f = fixture("unsafe_comment");
    assert_eq!(
        spans(&f, "unsafe-needs-safety-comment"),
        vec![("crates/zmap-wire/src/raw.rs".to_string(), 4)],
        "the L4 block has no SAFETY comment; the L9 block is documented at L8"
    );
    assert_eq!(f.len(), 1, "{f:?}");
}

#[test]
fn unsafe_free_crate_must_attest_with_forbid() {
    let f = fixture("unsafe_attestation");
    assert_eq!(
        spans(&f, "unsafe-needs-safety-comment"),
        vec![("crates/zmap-math/src/lib.rs".to_string(), 1)]
    );
    assert!(f[0].message.contains("forbid(unsafe_code)"), "{:?}", f[0]);
    assert_eq!(f.len(), 1, "{f:?}");
}

#[test]
fn counter_wiring_flags_each_break_at_its_declaration() {
    let f = fixture("counter_wiring");
    assert_eq!(
        spans(&f, "counter-wiring"),
        vec![
            ("crates/zmap-core/src/metadata.rs".to_string(), 5),
            ("crates/zmap-core/src/metadata.rs".to_string(), 6),
            ("crates/zmap-core/src/metadata.rs".to_string(), 7),
        ],
        "one finding per broken counter, anchored at its Counters declaration"
    );
    let msgs: Vec<&str> = f.iter().map(|f| f.message.as_str()).collect();
    assert!(msgs[0].contains("missing_status") && msgs[0].contains("not a StatusUpdate field"));
    assert!(msgs[1].contains("unpopulated") && msgs[1].contains("monitor.rs"));
    assert!(msgs[2].contains("missing_cli") && msgs[2].contains("CLI status path"));
    assert_eq!(f.len(), 3, "ok_one is fully wired and must stay silent: {f:?}");
}

#[test]
fn deferred_work_markers_fire() {
    let f = fixture("todo");
    assert_eq!(
        spans(&f, "todo-fixme-gate"),
        vec![
            ("crates/zmap-core/src/notes.rs".to_string(), 4),
            ("crates/zmap-core/src/notes.rs".to_string(), 8),
        ],
        "line comment at L4, block comment at L8"
    );
    assert_eq!(f.len(), 2, "{f:?}");
}

#[test]
fn atomics_discipline_requires_protocol_comments_and_bans_seqcst() {
    let f = fixture("atomics_discipline");
    assert_eq!(
        spans(&f, "atomics-ordering-discipline"),
        vec![
            ("crates/zmap-core/src/seq.rs".to_string(), 18),
            ("crates/zmap-core/src/seq.rs".to_string(), 22),
            ("crates/zmap-core/src/seq.rs".to_string(), 32),
        ],
        "L18: `bad` has no protocol comment; L22: SeqCst is always denied; \
         L32: slot read guarded only by a Relaxed load. The annotated \
         `good` sites and the Acquire-guarded slot read stay quiet"
    );
    assert!(f[0].message.contains("[atomics] bad"), "{:?}", f[0]);
    assert!(f[1].message.contains("SeqCst"), "{:?}", f[1]);
    assert!(f[2].message.contains("Relaxed"), "{:?}", f[2]);
    assert_eq!(f.len(), 3, "{f:?}");
}

#[test]
fn lock_discipline_flags_sends_under_guard_and_abba_order() {
    let f = fixture("lock_discipline");
    assert_eq!(
        spans(&f, "lock-discipline"),
        vec![
            ("crates/zmap-core/src/parallel.rs".to_string(), 7),
            ("crates/zmap-core/src/parallel.rs".to_string(), 24),
        ],
        "L7: send_batch while the world guard lives; L24: log→stats order \
         reversed by log.rs. drop-before-send and sending through the \
         guard itself stay quiet"
    );
    assert!(f[0].message.contains("send_batch") && f[0].message.contains("world"), "{:?}", f[0]);
    assert!(f[1].message.contains("opposite order") && f[1].message.contains("log.rs"), "{:?}", f[1]);
    assert_eq!(f.len(), 2, "{f:?}");
}

#[test]
fn alloc_in_hot_path_follows_the_call_graph() {
    let f = fixture("alloc_hot");
    assert_eq!(
        spans(&f, "alloc-in-hot-path"),
        vec![("crates/zmap-core/src/staged.rs".to_string(), 15)],
        "to_vec one hop below StagedRender::push fires; the format! in \
         the unreachable `label` stays quiet"
    );
    assert!(
        f[0].message.contains("StagedRender::push → StagedRender::stage"),
        "the finding names the reaching chain: {:?}",
        f[0]
    );
    assert_eq!(f.len(), 1, "{f:?}");
}

#[test]
fn panic_reachability_follows_entry_points_and_honors_panics_docs() {
    let f = fixture("panic_reach");
    assert_eq!(
        spans(&f, "panic-reachability"),
        vec![("crates/zmap-core/src/engine.rs".to_string(), 14)],
        "unwrap below Engine::run fires; the documented `# Panics` \
         contract in run_with and the unreachable helper stay quiet"
    );
    assert!(
        f[0].message.contains("Engine::run → Engine::step"),
        "the finding names the reaching chain: {:?}",
        f[0]
    );
    assert_eq!(f.len(), 1, "{f:?}");
}

#[test]
fn findings_come_back_sorted_by_path_line_lint() {
    let f = fixture("counter_wiring");
    let mut sorted = f.clone();
    sorted.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.lint).cmp(&(b.path.as_str(), b.line, b.lint))
    });
    assert_eq!(f, sorted);
}
