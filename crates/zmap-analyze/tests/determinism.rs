//! `run_lints` is a pure function of the file *set*: the order files
//! were inserted into the map and the line-ending style of the sources
//! must never change a single finding. CI and local runs, git checkouts
//! with `core.autocrlf`, and any future parallel walker all depend on
//! this.

use proptest::prelude::*;
use std::collections::BTreeMap;
use zmap_analyze::lexer::lex;
use zmap_analyze::lints::run_lints;

/// A corpus wide enough to exercise per-file lints (unwrap, println,
/// rng, atomics) and workspace lints (panic reachability through the
/// call graph), plus a clean file that must stay silent.
const CORPUS: &[(&str, &str)] = &[
    (
        "crates/zmap-core/src/scanner.rs",
        "fn hot() { x.lock().unwrap(); }\n",
    ),
    (
        "crates/zmap-core/src/engine.rs",
        "impl Engine {\n    pub fn run(&self) {\n        self.go()\n    }\n    fn go(&self) {\n        y.unwrap();\n    }\n}\n",
    ),
    (
        "crates/zmap-core/src/seq.rs",
        "use std::sync::atomic::{AtomicU64, Ordering};\nfn f(c: &AtomicU64) -> u64 {\n    c.load(Ordering::SeqCst)\n}\n",
    ),
    (
        "crates/zmap-dedup/src/window.rs",
        "fn f() {\n    println!(\"debug\");\n}\n",
    ),
    (
        "crates/zmap-targets/src/shuffle.rs",
        "fn f() {\n    let r = thread_rng();\n}\n",
    ),
    (
        "crates/zmap-math/src/clean.rs",
        "pub fn double(x: u64) -> u64 {\n    x * 2\n}\n",
    ),
];

/// Renders findings to comparable strings.
fn findings(order: &[usize], crlf: bool) -> Vec<String> {
    let mut files = BTreeMap::new();
    for &i in order {
        let (path, src) = CORPUS[i];
        let src = if crlf { src.replace('\n', "\r\n") } else { src.to_string() };
        files.insert(path.to_string(), lex(&src));
    }
    run_lints(&files)
        .into_iter()
        .map(|f| format!("{}:{}:{}: {}", f.path, f.line, f.lint, f.message))
        .collect()
}

/// Sort-by-priority permutation of `0..keys.len()` — covers every
/// corpus entry exactly once in a sampled order.
fn permutation(keys: &[u64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..keys.len()).collect();
    idx.sort_by_key(|&i| (keys[i], i));
    idx
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn insertion_order_and_line_endings_never_change_findings(
        keys in prop::collection::vec(0u64..1_000_000, 6..7),
        crlf in any::<bool>(),
    ) {
        let canonical = findings(&(0..CORPUS.len()).collect::<Vec<_>>(), false);
        prop_assert!(!canonical.is_empty(), "the corpus must actually trigger lints");
        let sampled = findings(&permutation(&keys), crlf);
        prop_assert_eq!(
            canonical, sampled,
            "findings drifted under permutation {:?} / crlf={}", keys, crlf
        );
    }
}
