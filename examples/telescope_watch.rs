//! Watching scanners from a network telescope (§2.1's methodology).
//!
//! ```text
//! cargo run --release --example telescope_watch
//! ```
//!
//! Generates one quarter of the simulated scanner population (ZMap,
//! Masscan, forks, everything else), lands a sample of their probe
//! packets on a darknet, and runs the attribution pipeline: flows
//! hitting ≥10 dark IPs are scans; tools are identified from wire
//! fingerprints (ZMap's static IP ID 54321, Masscan's
//! destination-derived ID).

use std::net::Ipv4Addr;
use zmap::netsim::population::{PopulationModel, Quarter};
use zmap::telescope::aggregate::{PortReport, QuarterReport};
use zmap::telescope::detector::ScanDetector;

fn main() {
    let q = Quarter { year: 2024, q: 1 };
    let model = PopulationModel::default();
    let instances = model.instances(q);
    println!("{} scanner instances active in {q}", instances.len());

    // The darknet: 198.18.0.0/16 (benchmark space reused as a telescope).
    let mut detector = ScanDetector::new();
    let mut frames = 0u64;
    for inst in &instances {
        // Each instance lands `packets` probes on the telescope; sample
        // up to 200 per instance to keep the example fast (sampling a
        // flow uniformly does not change its attribution).
        let n = inst.packets.min(200);
        for i in 0..n {
            let dark = Ipv4Addr::from(0xC6120000u32 | (zmap::netsim::hash3(inst.seed, i as u32, 1) as u32 & 0xFFFF));
            let frame = inst.probe_frame(dark, i);
            detector.ingest_frame(&frame);
            frames += 1;
        }
    }

    let scans = detector.scans();
    let report = QuarterReport::from_scans(q.to_string(), &scans);
    let mut ports = PortReport::default();
    ports.add_scans(&scans);

    println!("telescope saw {frames} packets, detected {} scans", scans.len());
    println!(
        "ZMap share of scan packets: {:.1}% (paper, 2024Q1: 35.4%)",
        100.0 * report.zmap_share()
    );
    println!("\ntop 8 scanned ports (all tools):");
    for (port, c) in ports.top_ports_all(8) {
        println!(
            "  tcp/{port:<5} {:>8} packets  ({:>5.1}% from ZMap)",
            c.total,
            100.0 * c.zmap as f64 / c.total.max(1) as f64
        );
    }
    println!("\nper-port ZMap shares the paper highlights:");
    for port in [23u16, 80, 8080, 8728] {
        println!(
            "  tcp/{port:<5} {:>5.1}%",
            100.0 * ports.zmap_share_of_port(port)
        );
    }
}
