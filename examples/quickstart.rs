//! Quickstart: scan a /16 of the simulated Internet on TCP/80.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Demonstrates the core loop: configure → scan → stream results, plus
//! the completion metadata (stream #4) every scan produces.

use zmap::prelude::*;

fn main() {
    // The world: a procedurally generated Internet. Seed fixes everything.
    let net = SimNet::new(WorldConfig {
        seed: 2024,
        ..WorldConfig::default()
    });

    // The scan: 23.128.0.0/16 on TCP/80 at 100 kpps.
    let source = "192.0.2.9".parse().unwrap();
    let mut cfg = ScanConfig::new(source);
    cfg.allowlist_prefix("23.128.0.0".parse().unwrap(), 16);
    cfg.ports = vec![80];
    cfg.rate_pps = 100_000;
    cfg.seed = 7;

    let scanner = Scanner::new(cfg, net.transport(source)).expect("valid config");
    println!(
        "scanning {} targets (group modulus {})...",
        scanner.generator().expect("v4 scan").target_count(),
        scanner.generator().expect("v4 scan").cycle().group().prime()
    );
    let summary = scanner.run();

    println!("\nfirst 10 open hosts:");
    for r in summary.results.iter().take(10) {
        println!("  {}:{}  ttl={}", r.saddr, r.sport, r.ttl);
    }
    println!(
        "\nsent {} probes in {:.1}s (virtual), {} hosts with port 80 open ({:.2}% hitrate)",
        summary.sent,
        summary.duration_ns as f64 / 1e9,
        summary.unique_successes,
        100.0 * summary.hitrate()
    );
    println!(
        "duplicates suppressed: {}, stray/invalid frames ignored: {}",
        summary.duplicates_suppressed, summary.responses_discarded
    );
    println!("\nmetadata: {}", summary.metadata.to_json());
}
