//! Multiport scanning (the §4.1 redesign).
//!
//! ```text
//! cargo run --release --example multiport
//! ```
//!
//! Port diffusion (Izhikevich et al.) showed services live on a long
//! tail of ports — only 3% of HTTP is on port 80 — so ZMap's generator
//! now permutes (IP, port) *targets*: the top bits of each cyclic-group
//! element select the address, the bottom bits the port. This example
//! sweeps a /18 across eight ports in a single randomized pass and
//! breaks the results down per port.

use std::collections::BTreeMap;
use zmap::prelude::*;

fn main() {
    let net = SimNet::new(WorldConfig {
        seed: 77,
        ..WorldConfig::default()
    });
    let source = "192.0.2.44".parse().unwrap();
    let ports = vec![21, 22, 23, 80, 443, 7547, 8080, 8728];

    let mut cfg = ScanConfig::new(source);
    cfg.allowlist_prefix("100.128.0.0".parse().unwrap(), 18);
    cfg.ports = ports.clone();
    cfg.rate_pps = 500_000;
    cfg.seed = 99;
    // The multiport dedup structure: a 10^6-entry sliding window (the
    // full-bitmap alternative would need 35 TB for the 48-bit space).
    cfg.dedup = DedupMethod::Window(1_000_000);

    let scanner = Scanner::new(cfg, net.transport(source)).expect("valid config");
    let (ip_count, target_count) = {
        let gen = scanner.generator().expect("v4 scan");
        println!(
            "{} IPs x {} ports = {} targets, permuted in one group of order {}",
            gen.ip_count(),
            ports.len(),
            gen.target_count(),
            gen.cycle().group().order()
        );
        (gen.ip_count(), gen.target_count())
    };

    let summary = scanner.run();

    let mut per_port: BTreeMap<u16, u64> = BTreeMap::new();
    for r in &summary.results {
        *per_port.entry(r.sport).or_default() += 1;
    }
    println!("\nopen services per port:");
    for (port, count) in &per_port {
        let rate = *count as f64 / ip_count as f64 * 100.0;
        println!("  tcp/{port:<5} {count:>6} hosts ({rate:.2}% of scanned IPs)");
    }
    println!(
        "\ntotal: {} open (ip, port) targets out of {} probed",
        summary.unique_successes, summary.sent
    );
    assert_eq!(summary.sent, target_count, "every target exactly once");
}
