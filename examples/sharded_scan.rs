//! Sharded scanning across "machines" and "threads" (§4.2).
//!
//! ```text
//! cargo run --release --example sharded_scan
//! ```
//!
//! Three simulated machines, two send threads each, split one /16 scan
//! with pizza sharding. Every machine walks the same cyclic group with
//! the same seed but probes only its slice; the union covers every
//! target exactly once with no coordination.

use std::collections::HashSet;
use zmap::prelude::*;

fn main() {
    let shards = 3u32;
    let mut union: HashSet<(std::net::IpAddr, u16)> = HashSet::new();
    let mut total_sent = 0u64;
    let mut total_found = 0u64;

    for shard in 0..shards {
        // Each machine gets its own vantage on a fresh-but-identical
        // world (same world seed ⇒ same host population).
        let net = SimNet::new(WorldConfig {
            seed: 1234,
            ..WorldConfig::default()
        });
        let source = std::net::Ipv4Addr::new(192, 0, 2, 10 + shard as u8);
        let mut cfg = ScanConfig::new(source);
        cfg.allowlist_prefix("45.80.0.0".parse().unwrap(), 16);
        cfg.ports = vec![443];
        cfg.rate_pps = 200_000;
        cfg.seed = 42; // same seed on every machine: that IS the protocol
        cfg.shard = shard;
        cfg.num_shards = shards;
        cfg.subshards = 2;
        cfg.shard_algorithm = ShardAlgorithm::Pizza;

        let summary = Scanner::new(cfg, net.transport(source))
            .expect("valid config")
            .run();
        println!(
            "machine {shard}: sent {:>6} probes, found {:>5} open",
            summary.sent, summary.unique_successes
        );
        total_sent += summary.sent;
        total_found += summary.unique_successes;
        for r in &summary.results {
            assert!(
                union.insert((r.saddr, r.sport)),
                "shard overlap at {}:{}",
                r.saddr,
                r.sport
            );
        }
    }

    println!("\nunion: {total_sent} probes covered the full /16 exactly once");
    println!("total open hosts across shards: {total_found}");
    assert_eq!(total_sent, 65536, "3 shards x 2 threads = whole space");
    assert_eq!(union.len() as u64, total_found);
}
