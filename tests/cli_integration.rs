//! Integration: the CLI wrapper end to end — parse argv, run a scan,
//! verify all four output streams land where they should.

use zmap_cli::{parse_args, run_scan};

fn args(s: &str) -> Vec<String> {
    s.split_whitespace().map(String::from).collect()
}

fn tmpdir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("zmap-it-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn jsonl_scan_end_to_end() {
    let dir = tmpdir("jsonl");
    let out = dir.join("out.jsonl");
    let md = dir.join("md.json");
    let opts = parse_args(&args(&format!(
        "--subnet 66.10.0.0/22 -p 80,443 -r 200000 --seed 9 --sim-seed 2 \
         --sim-live-fraction 0.5 --cooldown-secs 1 -O jsonl -q \
         -o {} --metadata-file {}",
        out.display(),
        md.display()
    )))
    .unwrap();
    assert_eq!(run_scan(opts).unwrap(), 0);

    // Data stream: one JSON object per line, stable schema.
    let data = std::fs::read_to_string(&out).unwrap();
    let mut n = 0;
    for line in data.lines() {
        let v: serde_json::Value = serde_json::from_str(line).unwrap();
        assert!(v["saddr"].as_str().unwrap().starts_with("66.10."));
        let port = v["sport"].as_u64().unwrap();
        assert!(port == 80 || port == 443, "{port}");
        assert_eq!(v["classification"], "synack");
        assert_eq!(v["success"], true);
        n += 1;
    }
    assert!(n > 50, "expected plenty of results, got {n}");

    // Metadata stream: valid JSON with the counters.
    let meta: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&md).unwrap()).unwrap();
    assert_eq!(meta["counters"]["sent"], 2048);
    assert_eq!(meta["config"]["ports"], serde_json::json!([80, 443]));
    assert!(meta["permutation"]["group_prime"].as_u64().unwrap() > 2048);
}

#[test]
fn text_output_is_ip_port_lines() {
    let dir = tmpdir("text");
    let out = dir.join("out.txt");
    let opts = parse_args(&args(&format!(
        "--subnet 66.20.0.0/24 -r 100000 --sim-live-fraction 1.0 \
         --cooldown-secs 1 -q -o {}",
        out.display()
    )))
    .unwrap();
    assert_eq!(run_scan(opts).unwrap(), 0);
    let data = std::fs::read_to_string(&out).unwrap();
    for line in data.lines() {
        let (ip, port) = line.split_once(':').expect("ip:port format");
        assert!(ip.parse::<std::net::Ipv4Addr>().is_ok(), "{ip}");
        assert_eq!(port, "80");
    }
    assert!(data.lines().count() > 10);
}

#[test]
fn invalid_config_is_a_clean_error() {
    // Allowlisting reserved space that the default blocklist removes
    // leaves zero targets: exit code 2, no panic.
    let opts = parse_args(&args("--subnet 10.0.0.0/24 -q")).unwrap();
    assert_eq!(run_scan(opts).unwrap(), 2);
}

#[test]
fn deterministic_given_seeds() {
    let run = || {
        let dir = tmpdir("det");
        let out = dir.join("out.txt");
        let opts = parse_args(&args(&format!(
            "--subnet 66.30.0.0/24 --seed 4 --sim-seed 4 --cooldown-secs 1 -q -o {}",
            out.display()
        )))
        .unwrap();
        run_scan(opts).unwrap();
        std::fs::read_to_string(&out).unwrap()
    };
    assert_eq!(run(), run());
}
