//! Integration: IPv6 scans end to end — XMap-style per-prefix walks
//! through both engines against the procedural v6 population, byte-level
//! determinism across the four output streams, kill-then-resume
//! equivalence for the 128-bit index space, and the per-response dedup
//! degradation contract (a response outside the target space is
//! discarded, not a scan abort).

use std::collections::BTreeSet;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use zmap::core::checkpoint::{CheckpointPolicy, CheckpointState};
use zmap::core::log::{Level, Logger};
use zmap::core::output::OutputModule;
use zmap::core::parallel::{run_parallel, SharedSimTransport};
use zmap::core::transport::LoopbackTransport;
use zmap::core::Transport;
use zmap::netsim::loss::LossModel;
use zmap::prelude::*;

const PREFIXES: &str = "2001:db8:a::/48 pattern=low bits=6 density=1.0\n\
                        2001:db8:b::/48 pattern=eui64 bits=4 density=1.0\n";

/// Total hosts the prefix list above announces: 2^6 + 2^4.
const HOSTS: u64 = 64 + 16;

fn v6_world(seed: u64, prefixes: &str, ports: &[u16]) -> WorldConfig {
    WorldConfig {
        seed,
        loss: LossModel::NONE,
        v6: Some(
            V6Population::from_prefix_list(prefixes, ports.to_vec())
                .expect("test prefix list parses"),
        ),
        ..WorldConfig::default()
    }
}

fn v6_cfg(prefixes: &str, ports: &[u16]) -> ScanConfig {
    let mut cfg = ScanConfig::new(Ipv4Addr::new(192, 0, 2, 9));
    cfg.ipv6 = Some(Ipv6Config {
        source_ip: "2001:db8:ffff::1".parse().unwrap(),
        prefix_list: prefixes.into(),
    });
    cfg.ports = ports.to_vec();
    cfg.seed = 11;
    cfg.rate_pps = 100_000;
    cfg.cooldown_secs = 2;
    cfg
}

fn found_in(results: &[ScanResult]) -> BTreeSet<(IpAddr, u16)> {
    results.iter().map(|r| (r.saddr, r.sport)).collect()
}

fn discovered(summary: &ScanSummary) -> BTreeSet<(IpAddr, u16)> {
    found_in(&summary.results)
}

fn in_scanned_prefixes(ip: IpAddr) -> bool {
    let IpAddr::V6(v6) = ip else { return false };
    let o = v6.octets();
    o[..5] == [0x20, 0x01, 0x0d, 0xb8, 0x00] && (o[5] == 0x0a || o[5] == 0x0b)
}

#[test]
fn tcp_v6_scan_finds_every_host() {
    let net = SimNet::new(v6_world(5, PREFIXES, &[443]));
    let cfg = v6_cfg(PREFIXES, &[443]);
    let s = Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 9)))
        .unwrap()
        .run();
    assert_eq!(s.sent, HOSTS);
    assert_eq!(s.unique_successes, HOSTS);
    assert_eq!(s.responses_discarded, 0);
    assert!((s.hitrate() - 1.0).abs() < 1e-9);
    let found = discovered(&s);
    assert_eq!(found.len() as u64, HOSTS);
    assert!(found.iter().all(|&(ip, port)| in_scanned_prefixes(ip) && port == 443));
}

#[test]
fn icmpv6_scan_finds_every_host() {
    let net = SimNet::new(v6_world(5, PREFIXES, &[]));
    let mut cfg = v6_cfg(PREFIXES, &[0]);
    cfg.probe = ProbeKind::IcmpEcho;
    let s = Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 9)))
        .unwrap()
        .run();
    assert_eq!(s.sent, HOSTS);
    assert_eq!(s.unique_successes, HOSTS, "echo replies ignore port state");
    assert!(discovered(&s).iter().all(|&(ip, _)| in_scanned_prefixes(ip)));
}

#[test]
fn udp_v6_scan_finds_every_open_host() {
    let net = SimNet::new(v6_world(5, PREFIXES, &[5353]));
    let mut cfg = v6_cfg(PREFIXES, &[5353]);
    cfg.probe = ProbeKind::Udp(b"v6-udp-probe".to_vec());
    let s = Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 9)))
        .unwrap()
        .run();
    assert_eq!(s.sent, HOSTS);
    assert_eq!(s.unique_successes, HOSTS);
}

/// Sparse prefixes (density < 1) produce partial hit rates without any
/// change in coverage of the walk: every announced host is still probed
/// exactly once.
#[test]
fn sparse_density_hits_a_subset() {
    let sparse = "2001:db8:a::/48 pattern=low bits=8 density=0.3\n";
    let net = SimNet::new(v6_world(5, sparse, &[443]));
    let cfg = v6_cfg(sparse, &[443]);
    let s = Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 9)))
        .unwrap()
        .run();
    assert_eq!(s.sent, 256, "the walk covers the full 2^8 pattern space");
    let oracle = V6Population::from_prefix_list(sparse, vec![443])
        .unwrap()
        .responsive_count(5);
    assert_eq!(
        s.unique_successes, oracle,
        "hits must equal the population's responsive-host oracle"
    );
    assert!(s.unique_successes > 0 && s.unique_successes < 256);
}

#[test]
fn sequential_and_parallel_engines_agree() {
    let seq = {
        let net = SimNet::new(v6_world(5, PREFIXES, &[443]));
        Scanner::new(v6_cfg(PREFIXES, &[443]), net.transport(Ipv4Addr::new(192, 0, 2, 9)))
            .unwrap()
            .run()
    };
    let par = {
        let world = Arc::new(Mutex::new(World::new(v6_world(5, PREFIXES, &[443]))));
        let transport = SharedSimTransport::new(world, Ipv4Addr::new(192, 0, 2, 9));
        let mut cfg = v6_cfg(PREFIXES, &[443]);
        cfg.subshards = 2;
        run_parallel(&cfg, &transport).unwrap()
    };
    assert_eq!(seq.unique_successes, par.unique_successes);
    assert_eq!(discovered(&seq), found_in(&par.results));
}

/// Shards partition the v6 walk: disjoint per-shard discoveries whose
/// union is the whole population, exactly as for v4.
#[test]
fn shards_partition_the_v6_space() {
    let mut union = BTreeSet::new();
    let mut total_sent = 0u64;
    for shard in 0..3u32 {
        let net = SimNet::new(v6_world(5, PREFIXES, &[443]));
        let mut cfg = v6_cfg(PREFIXES, &[443]);
        cfg.shard = shard;
        cfg.num_shards = 3;
        let s = Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 9)))
            .unwrap()
            .run();
        total_sent += s.sent;
        for t in discovered(&s) {
            assert!(union.insert(t), "shard overlap at {t:?}");
        }
    }
    assert_eq!(total_sent, HOSTS);
    assert_eq!(union.len() as u64, HOSTS);
}

/// Byte-level determinism across all four output streams: two identical
/// v6 scans must render identical data, logs, status, and metadata — the
/// same contract the CI double-run job enforces on the shipped binary.
#[test]
fn v6_double_run_is_byte_identical() {
    let run = || {
        let net = SimNet::new(v6_world(7, PREFIXES, &[443]));
        let logger = Logger::memory(Level::Debug);
        let summary = Scanner::with_logger(
            v6_cfg(PREFIXES, &[443]),
            net.transport(Ipv4Addr::new(192, 0, 2, 9)),
            logger.clone(),
        )
        .unwrap()
        .run();
        let mut out = OutputModule::new(OutputFormat::Csv, Vec::new());
        for r in &summary.results {
            out.record(r).unwrap();
        }
        let data = String::from_utf8(out.finish().unwrap()).unwrap();
        let logs = logger
            .lines()
            .iter()
            .map(|(lvl, m)| format!("{lvl:?} {m}\n"))
            .collect::<String>();
        let status = summary
            .status
            .iter()
            .map(|s| serde_json::to_string(s).unwrap() + "\n")
            .collect::<String>();
        (data, logs, status, summary.metadata.to_json())
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "data stream must replay byte-identically");
    assert_eq!(a.1, b.1, "log stream must replay byte-identically");
    assert_eq!(a.2, b.2, "status stream must replay byte-identically");
    assert_eq!(a.3, b.3, "metadata must replay byte-identically");
}

/// Kill-then-resume over the 128-bit index space: the journal carries the
/// v6 space fingerprint in the group-prime slot and the walk position in
/// the cycle parts, so the union of a killed attempt and its resume must
/// equal an uninterrupted run.
#[test]
fn v6_kill_then_resume_equals_uninterrupted() {
    let dir = std::env::temp_dir().join("zmap-v6-resume-test");
    std::fs::create_dir_all(&dir).unwrap();
    for kill_at in [20u64, 70, 130] {
        let path: PathBuf = dir.join(format!("v6-{kill_at}.ckpt"));
        let _ = std::fs::remove_file(&path);
        let policy = CheckpointPolicy::new(&path).with_interval_ns(10_000_000);

        let baseline = {
            let net = SimNet::new(v6_world(5, PREFIXES, &[443]));
            Scanner::new(v6_cfg(PREFIXES, &[443]), net.transport(Ipv4Addr::new(192, 0, 2, 9)))
                .unwrap()
                .run()
        };
        assert!(!baseline.killed);
        let want = discovered(&baseline);

        let first = {
            let mut wc = v6_world(5, PREFIXES, &[443]);
            wc.faults = FaultPlan::builder().kill_at(kill_at).build();
            let net = SimNet::new(wc);
            Scanner::new(v6_cfg(PREFIXES, &[443]), net.transport(Ipv4Addr::new(192, 0, 2, 9)))
                .unwrap()
                .run_with(RunOptions {
                    checkpoint: Some(policy.clone()),
                    ..RunOptions::default()
                })
        };
        assert!(first.killed, "kill_at {kill_at} must fire");
        let journal = CheckpointState::load(&path).unwrap();
        assert!(!journal.complete);

        let second = {
            let net = SimNet::new(v6_world(5, PREFIXES, &[443]));
            Scanner::resume(
                v6_cfg(PREFIXES, &[443]),
                net.transport(Ipv4Addr::new(192, 0, 2, 9)),
                &journal,
            )
            .unwrap()
            .run_with(RunOptions {
                checkpoint: Some(policy),
                ..RunOptions::default()
            })
        };
        assert!(!second.killed);
        assert_eq!(second.resume_count, 1);

        let mut got = discovered(&first);
        got.extend(discovered(&second));
        assert_eq!(
            got, want,
            "union of killed+resumed v6 discoveries must equal uninterrupted (kill_at {kill_at})"
        );
    }
}

/// A journal written by a different prefix list must be refused: the v6
/// space fingerprint rides the journal's group-prime slot, so a foreign
/// journal fails the same gate a v4 group mismatch does.
#[test]
fn v6_resume_refuses_a_foreign_prefix_list() {
    let dir = std::env::temp_dir().join("zmap-v6-foreign-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("foreign.ckpt");
    let _ = std::fs::remove_file(&path);
    let policy = CheckpointPolicy::new(&path).with_interval_ns(10_000_000);

    let mut wc = v6_world(5, PREFIXES, &[443]);
    wc.faults = FaultPlan::builder().kill_at(40).build();
    let net = SimNet::new(wc);
    let first = Scanner::new(v6_cfg(PREFIXES, &[443]), net.transport(Ipv4Addr::new(192, 0, 2, 9)))
        .unwrap()
        .run_with(RunOptions {
            checkpoint: Some(policy),
            ..RunOptions::default()
        });
    assert!(first.killed);
    let journal = CheckpointState::load(&path).unwrap();

    let other = "2001:db8:c::/48 pattern=low bits=6 density=1.0\n";
    let net = SimNet::new(v6_world(5, other, &[443]));
    assert!(
        Scanner::resume(v6_cfg(other, &[443]), net.transport(Ipv4Addr::new(192, 0, 2, 9)), &journal)
            .is_err(),
        "a different prefix list must not resume this journal"
    );
}

/// Crafts the SYN-ACK a live v6 host would send in reply to `probe`.
fn synthesize_synack_v6(probe: &[u8]) -> Vec<u8> {
    use zmap::wire::checksum;
    use zmap::wire::ethernet::{EtherType, EthernetRepr, EthernetView, MacAddr};
    use zmap::wire::ipv4::IpProtocol;
    use zmap::wire::ipv6::{Ipv6Repr, Ipv6View};
    use zmap::wire::tcp::{TcpFlags, TcpRepr, TcpView};

    let eth = EthernetView::parse(probe).unwrap();
    let ip = Ipv6View::parse(eth.payload()).unwrap();
    let tcp = TcpView::parse(ip.payload()).unwrap();
    let reply_tcp = TcpRepr {
        src_port: tcp.dst_port(),
        dst_port: tcp.src_port(),
        seq: 0x11223344,
        ack: tcp.seq().wrapping_add(1),
        flags: TcpFlags::SYN_ACK,
        window: 14600,
        options: OptionLayout::Linux.bytes(),
    };
    let tcp_len = reply_tcp.header_len() as u16;
    let mut buf = Vec::new();
    EthernetRepr {
        dst: eth.src(),
        src: MacAddr::local(77),
        ethertype: EtherType::Ipv6,
    }
    .emit(&mut buf);
    Ipv6Repr {
        src: ip.dst(),
        dst: ip.src(),
        next_header: IpProtocol::Tcp,
        hop_limit: 55,
        payload_len: tcp_len,
    }
    .emit(&mut buf);
    let pseudo = checksum::pseudo_header_v6(
        &ip.dst().octets(),
        &ip.src().octets(),
        6,
        u32::from(tcp_len),
    );
    reply_tcp.emit(pseudo, &[], &mut buf);
    buf
}

/// A loopback transport handle the test keeps after the scanner takes
/// ownership of its twin — both share one inner transport.
#[derive(Clone)]
struct SharedLoopback(Arc<Mutex<LoopbackTransport>>);

impl Transport for SharedLoopback {
    fn now(&self) -> u64 {
        self.0.lock().unwrap().now()
    }
    fn advance_to(&mut self, t: u64) {
        self.0.lock().unwrap().advance_to(t)
    }
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), SendError> {
        self.0.lock().unwrap().send_frame(frame)
    }
    fn recv_frames(&mut self) -> Vec<(u64, Vec<u8>)> {
        self.0.lock().unwrap().recv_frames()
    }
}

/// The dedup-degradation contract: a cookie-valid response from an
/// address outside the prefix list cannot be keyed into the per-prefix
/// index space. It must be counted as discarded and dropped — one lost
/// record, not a dead scan — while in-space responses keep landing.
#[test]
fn response_outside_the_target_space_degrades_not_aborts() {
    let prefixes = "2001:db8:a::/48 pattern=low bits=2 density=1.0\n";
    let cfg = v6_cfg(prefixes, &[443]);

    // Pass 1: dry run against an empty loopback to harvest the probe
    // frames this (seed, prefix list) deterministically emits.
    let inner = Arc::new(Mutex::new(LoopbackTransport::new()));
    let probes = {
        let s = Scanner::new(cfg.clone(), SharedLoopback(inner.clone()))
            .unwrap()
            .run();
        assert_eq!(s.sent, 4);
        let guard = inner.lock().unwrap();
        guard.sent.iter().map(|(_, f)| f.clone()).collect::<Vec<_>>()
    };

    // A cookie-valid SYN-ACK from an address the prefix list never
    // announced: forge the probe the scanner *would* have sent there
    // (same seed, same source) and answer it.
    let foreign: Ipv6Addr = "2001:db8:ffff::99".parse().unwrap();
    let b = zmap::wire::probe6::ProbeBuilderV6::new("2001:db8:ffff::1".parse().unwrap(), cfg.seed);
    let foreign_reply = synthesize_synack_v6(&b.tcp_syn(foreign, 443));

    // Pass 2: same scan, inbox preloaded with valid replies for every
    // in-space probe plus the out-of-space one.
    let inner = Arc::new(Mutex::new(LoopbackTransport::new()));
    {
        let mut guard = inner.lock().unwrap();
        for p in &probes {
            guard.inbox.push((1, synthesize_synack_v6(p)));
        }
        guard.inbox.push((1, foreign_reply));
    }
    let s = Scanner::new(cfg, SharedLoopback(inner))
        .unwrap()
        .run();
    assert_eq!(s.sent, 4);
    assert_eq!(s.unique_successes, 4, "in-space responses still land");
    assert_eq!(s.responses_discarded, 1, "the foreign response is dropped");
    assert!(!s.killed);
    assert!(discovered(&s).iter().all(|&(ip, _)| ip != IpAddr::V6(foreign)));
}
