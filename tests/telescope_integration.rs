//! Integration: population → packets → telescope attribution. The
//! attribution pipeline must recover ground truth from the wire alone.

use std::collections::HashMap;
use std::net::Ipv4Addr;
use zmap::netsim::population::{PopulationModel, Quarter, ScannerTool};
use zmap::netsim::hash3;
use zmap::telescope::aggregate::QuarterReport;
use zmap::telescope::detector::ScanDetector;
use zmap::telescope::fingerprint::{classify_frame, Fingerprint};

fn model() -> PopulationModel {
    PopulationModel {
        instances_at_peak: 600,
        ..PopulationModel::default()
    }
}

#[test]
fn per_scan_attribution_matches_ground_truth() {
    let q = Quarter { year: 2024, q: 1 };
    let mut det = ScanDetector::new();
    let mut truth: HashMap<(u32, u16), ScannerTool> = HashMap::new();
    for inst in model().instances(q) {
        truth.insert((inst.src_ip, inst.port), inst.tool);
        for i in 0..20u64 {
            let dark =
                Ipv4Addr::from(0xC6120000u32 | (hash3(inst.seed, i as u32, 2) as u32 & 0xFFFF));
            det.ingest_frame(&inst.probe_frame(dark, i));
        }
    }
    let scans = det.scans();
    assert!(scans.len() > 400, "most instances hit >=10 IPs: {}", scans.len());
    let mut correct = 0u32;
    let mut total = 0u32;
    for s in &scans {
        let Some(&tool) = truth.get(&(s.src_ip, s.dst_port)) else {
            continue;
        };
        total += 1;
        let expected = match tool {
            ScannerTool::ZMap => Fingerprint::ZMap,
            ScannerTool::Masscan => Fingerprint::Masscan,
            ScannerTool::ZMapFork | ScannerTool::Other => Fingerprint::Unknown,
        };
        correct += u32::from(s.tool == expected);
    }
    let acc = f64::from(correct) / f64::from(total);
    assert!(acc > 0.99, "attribution accuracy {acc} over {total} scans");
}

#[test]
fn zmap_share_rises_across_the_decade() {
    let m = model();
    let share_of = |year: u16| {
        let q = Quarter { year, q: 1 };
        let mut det = ScanDetector::new();
        for inst in m.instances(q) {
            for i in 0..10u64 {
                let dark = Ipv4Addr::from(
                    0xC6120000u32 | (hash3(inst.seed, i as u32, 3) as u32 & 0xFFFF),
                );
                if let Some(info) = classify_frame(&inst.probe_frame(dark, i)) {
                    det.ingest_info_weighted(&info, inst.packets / 10);
                }
            }
        }
        QuarterReport::from_scans("q", &det.scans()).zmap_share()
    };
    let s2014 = share_of(2014);
    let s2019 = share_of(2019);
    let s2024 = share_of(2024);
    assert!(s2014 < s2019 + 0.05, "2014 {s2014} vs 2019 {s2019}");
    assert!(s2019 < s2024, "2019 {s2019} vs 2024 {s2024}");
    assert!(
        s2024 > 0.25 && s2024 < 0.45,
        "2024 share {s2024} (paper: 35.4%)"
    );
    assert!(s2014 < 0.15, "2014 share {s2014} (paper: little adoption)");
}

#[test]
fn forks_are_undercounted_by_design() {
    // The IP-ID attribution misses ZMap forks — the paper's stated
    // limitation. Verify the telescope never labels a fork as ZMap.
    let q = Quarter { year: 2024, q: 1 };
    for inst in model().instances(q) {
        if inst.tool != ScannerTool::ZMapFork {
            continue;
        }
        for i in 0..5u64 {
            let frame = inst.probe_frame(Ipv4Addr::new(198, 18, 0, 1), i);
            let info = classify_frame(&frame).unwrap();
            assert_ne!(info.fingerprint, Fingerprint::ZMap);
        }
    }
}
