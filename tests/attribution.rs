//! Adversarial attribution matrix: the scanner and the telescope play
//! against each other, end to end, over the simulated Internet.
//!
//! One scenario (a /16 scan whose top /20 is a darknet) runs three ways:
//!
//! * **static IP-ID** — the classic ZMap fingerprint; stage 1 catches it.
//! * **random IP-ID** — the fingerprint is gone, but the cyclic walk is
//!   intact; stage 2 recovers the scanner's exact group parameters from
//!   the darknet hit order alone.
//! * **`--stealth`** (random IP-ID + per-block permutation re-keying) —
//!   both stages come up empty, while the scan still achieves identical
//!   coverage (validation is decoupled from the walk).
//!
//! A golden snapshot pins the full attribution report byte-for-byte
//! (regenerate with `UPDATE_GOLDEN=1 cargo test --test attribution`),
//! and a kill/resume run proves stealth scans stay checkpointable.

use proptest::prelude::*;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;
use std::path::PathBuf;
use zmap::core::plan::ScanPlan;
use zmap::netsim::loss::LossModel;
use zmap::prelude::*;
use zmap::telescope::fingerprint::{masscan_ip_id, Fingerprint, ProbeInfo};
use zmap::telescope::{report_json, Attribution, AttributionMethod, ScanDetector, SpaceHypothesis};

const SRC: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 9);
/// The scanned space: 10.20.0.0/16, port 80 → a 65536-candidate pool,
/// walked in the 65537 multiplicative group.
const SPACE: Ipv4Addr = Ipv4Addr::new(10, 20, 0, 0);
/// The telescope: the top /20 of the space — 4096 addresses, so the
/// darknet sees 1/16 of the walk.
const DARKNET: (Ipv4Addr, u8) = (Ipv4Addr::new(10, 20, 240, 0), 20);

fn world() -> WorldConfig {
    WorldConfig {
        seed: 5,
        model: ServiceModel::default(),
        loss: LossModel::NONE,
        faults: FaultPlan::none(),
        darknet: Some((u32::from(DARKNET.0), DARKNET.1)),
        ..WorldConfig::default()
    }
}

fn scan_config(rekey_blocks: u32) -> ScanConfig {
    let mut cfg = ScanConfig::new(SRC);
    cfg.allowlist_prefix(SPACE, 16);
    cfg.apply_default_blocklist = false;
    cfg.seed = 7;
    cfg.rate_pps = 1_000_000;
    cfg.cooldown_secs = 2;
    cfg.rekey_blocks = rekey_blocks;
    cfg
}

/// Runs one scan and returns the engine's summary plus what the darknet
/// captured, in arrival order.
fn scan_and_capture(cfg: ScanConfig) -> (ScanSummary, Vec<Vec<u8>>) {
    let net = SimNet::new(world());
    let summary = Scanner::new(cfg, net.transport(SRC)).unwrap().run();
    assert!(!summary.killed);
    let frames = net.with_world(|w| w.take_darknet_capture());
    (summary, frames.into_iter().map(|(_, f)| f).collect())
}

fn detect(frames: &[Vec<u8>]) -> ScanDetector {
    let mut det = ScanDetector::with_sequence_capture(8192);
    for f in frames {
        det.ingest_frame(f);
    }
    det
}

/// The analyst's guess: the enclosing /16 on the observed port.
fn hypothesis() -> SpaceHypothesis {
    SpaceHypothesis::new(SPACE, 65_536, &[80])
}

/// The ground-truth oracle: the generator the scanner actually walked
/// with, introspected from the plan the same config builds.
fn true_generator(cfg: &ScanConfig) -> u64 {
    match ScanPlan::build(cfg, None).unwrap() {
        ScanPlan::V4(gen) => gen.cycle().generator(),
        ScanPlan::V6(_) => unreachable!("v4 scenario"),
    }
}

fn the_scan(attrs: &[Attribution]) -> &Attribution {
    assert_eq!(attrs.len(), 1, "one scanner, one flow: {attrs:?}");
    &attrs[0]
}

// ---------------------------------------------------------------------------
// Golden-snapshot plumbing (mirrors tests/golden_outputs.rs).
// ---------------------------------------------------------------------------

fn check_golden(name: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("write golden snapshot");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {}: {e}; run UPDATE_GOLDEN=1 cargo test --test attribution",
            path.display()
        )
    });
    if expected != actual {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target/golden-actual");
        std::fs::create_dir_all(&dir).expect("create golden-actual dir");
        let actual_path = dir.join(format!("{name}.txt"));
        std::fs::write(&actual_path, actual).expect("write actual snapshot");
        panic!(
            "golden snapshot {name} drifted; actual written to {}\n\
             if the change is intentional: UPDATE_GOLDEN=1 cargo test --test attribution",
            actual_path.display()
        );
    }
}

// ---------------------------------------------------------------------------
// The adversarial matrix.
// ---------------------------------------------------------------------------

/// All three arms share one scenario, so one test runs them: per-arm
/// verdicts, the stealth-coverage equivalence, the golden report, and a
/// full re-run of the hardest arm proving the pipeline is deterministic
/// end to end.
#[test]
fn adversarial_matrix_with_golden_report() {
    let hyp = hypothesis();

    // Arm 1: static IP-ID. Stage 1 (fingerprint vote) settles it.
    let mut cfg = scan_config(0);
    cfg.ip_id = IpIdMode::Static;
    let (_, frames) = scan_and_capture(cfg);
    assert_eq!(frames.len(), 4096, "every darknet probe is captured");
    let static_attrs = detect(&frames).attributions(&hyp);
    let a = the_scan(&static_attrs);
    assert_eq!(a.tool, Fingerprint::ZMap);
    assert_eq!(a.method, AttributionMethod::Fingerprint);
    assert!(a.confidence > 0.999, "every probe votes ZMap: {a:?}");

    // Arm 2: random IP-ID. The fingerprint is gone — stage 2 recovers
    // the scanner's exact walk parameters from probe order alone.
    let cfg = scan_config(0);
    let want_generator = true_generator(&cfg);
    let (random_summary, frames) = scan_and_capture(cfg);
    let random_attrs = detect(&frames).attributions(&hyp);
    let a = the_scan(&random_attrs);
    assert_eq!(a.tool, Fingerprint::ZMap, "caught despite random IP-ID");
    assert_eq!(a.method, AttributionMethod::Cryptanalytic);
    assert!(a.confidence >= 0.95, "walk order explains the hits: {a:?}");
    let r = a.recovered.expect("cryptanalytic verdicts carry evidence");
    assert_eq!(r.prime, 65_537);
    assert_eq!(
        r.generator, want_generator,
        "the telescope recovers the scanner's actual generator"
    );

    // Arm 3: --stealth (random IP-ID + 16-block re-keying). Both stages
    // fail; the scan itself loses nothing.
    let cfg = scan_config(16);
    let (stealth_summary, frames) = scan_and_capture(cfg);
    assert_eq!(frames.len(), 4096, "re-keying still covers the space");
    let stealth_attrs = detect(&frames).attributions(&hyp);
    let a = the_scan(&stealth_attrs);
    assert_eq!(a.tool, Fingerprint::Unknown);
    assert_eq!(a.method, AttributionMethod::Unattributed);
    assert!(a.confidence < 0.5, "re-keyed walk must not attribute: {a:?}");
    assert_eq!(
        stealth_summary.unique_successes, random_summary.unique_successes,
        "stealth changes probe order only: validation is walk-independent"
    );
    assert_eq!(stealth_summary.sent, random_summary.sent);

    // The full report is byte-stable: golden snapshot plus a complete
    // re-run of the cryptanalytic arm reproducing it exactly.
    let report = report_json(&[
        ("static-ip-id", &static_attrs[..]),
        ("random-ip-id", &random_attrs[..]),
        ("stealth-16", &stealth_attrs[..]),
    ]);
    let (_, frames_again) = scan_and_capture(scan_config(0));
    let random_again = detect(&frames_again).attributions(&hyp);
    assert_eq!(
        report_json(&[("random-ip-id", &random_attrs[..])]),
        report_json(&[("random-ip-id", &random_again[..])]),
        "attribution is deterministic across full scan re-runs"
    );
    check_golden("attribution_report", &report);
}

// ---------------------------------------------------------------------------
// Stealth scans stay crash-tolerant.
// ---------------------------------------------------------------------------

/// A `--stealth` scan killed mid-flight resumes from its journal and
/// converges on exactly the discoveries of an uninterrupted stealth run
/// (the re-keyed walk is re-derived from the seed; the journal's walk
/// fingerprint gates drift).
#[test]
fn stealth_kill_then_resume_equals_uninterrupted() {
    let small = || {
        let mut cfg = ScanConfig::new(SRC);
        cfg.allowlist_prefix(Ipv4Addr::new(66, 7, 0, 0), 24);
        cfg.apply_default_blocklist = false;
        cfg.seed = 11;
        cfg.rate_pps = 1_000;
        cfg.cooldown_secs = 2;
        cfg.rekey_blocks = 4;
        cfg
    };
    let small_world = |kill_at: Option<u64>| {
        let model = ServiceModel {
            live_fraction: 1.0,
            ..ServiceModel::default()
        };
        let faults = match kill_at {
            Some(k) => FaultPlan::builder().kill_at(k).build(),
            None => FaultPlan::none(),
        };
        SimNet::new(WorldConfig {
            seed: 5,
            model,
            faults,
            loss: LossModel::NONE,
            ..WorldConfig::default()
        })
    };
    let discovered = |s: &ScanSummary| -> BTreeSet<(std::net::IpAddr, u16)> {
        s.results.iter().map(|r| (r.saddr, r.sport)).collect()
    };

    let dir = std::env::temp_dir().join("zmap-attribution-test");
    std::fs::create_dir_all(&dir).unwrap();
    for kill_at in [64u64, 250, 420] {
        let path = dir.join(format!("stealth-{kill_at}.ckpt"));
        let _ = std::fs::remove_file(&path);
        let policy = CheckpointPolicy::new(&path).with_interval_ns(10_000_000);

        let net = small_world(None);
        let baseline = Scanner::new(small(), net.transport(SRC)).unwrap().run();
        assert!(!baseline.killed);
        let want = discovered(&baseline);
        assert!(!want.is_empty());

        let net = small_world(Some(kill_at));
        let first = Scanner::new(small(), net.transport(SRC))
            .unwrap()
            .run_with(RunOptions {
                checkpoint: Some(policy.clone()),
                ..RunOptions::default()
            });
        assert!(first.killed, "kill_at {kill_at} must fire");
        let journal = CheckpointState::load(&path).unwrap();
        assert!(!journal.complete);

        let net = small_world(None);
        let second = Scanner::resume(small(), net.transport(SRC), &journal)
            .unwrap()
            .run_with(RunOptions {
                checkpoint: Some(policy),
                ..RunOptions::default()
            });
        assert!(!second.killed);
        assert_eq!(second.resume_count, 1);

        let mut got = discovered(&first);
        got.extend(discovered(&second));
        assert_eq!(
            got, want,
            "stealth kill/resume union must equal uninterrupted (kill_at {kill_at})"
        );
        assert!(CheckpointState::load(&path).unwrap().complete);
    }
}

// ---------------------------------------------------------------------------
// Property tests.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any walk seed and any darknet density down to 1/16, recovery
    /// finds the scanner's exact (prime, generator) with high confidence.
    #[test]
    fn recovery_finds_true_parameters(seed in any::<u64>(), density in 2u64..=16) {
        use zmap::math::modmul;
        use zmap::targets::{Cycle, CyclicGroup};
        let p = 65_537u64;
        let cycle = Cycle::new(CyclicGroup::new(p).unwrap(), seed);
        let g = cycle.generator();
        // The darknet keeps elements by value (in-telescope or not), so
        // observation gaps along the walk are geometric with mode 1.
        let mut obs = Vec::new();
        let mut x = cycle.element_at_position(0);
        for _ in 0..p - 1 {
            if x.is_multiple_of(density) {
                obs.push(x);
            }
            x = modmul(x, g, p);
        }
        let got = zmap::telescope::recover_walk(&obs, 128, 16)
            .expect("a clean walk sample must recover");
        prop_assert_eq!(got.prime, p);
        prop_assert_eq!(got.generator, g);
        prop_assert!(got.confidence() >= 0.9, "confidence {}", got.confidence());
    }

    /// Masscan-pattern scans are never misattributed as ZMap by the
    /// majority vote, for any seed-derived sequence numbers: a stray
    /// per-packet IP-ID collision with 54321 cannot swing the flow.
    #[test]
    fn masscan_is_never_majority_voted_zmap(seed in any::<u64>(), src in any::<u32>()) {
        let port = 443u16;
        let mut det = ScanDetector::new();
        for i in 0..64u32 {
            let dst = u32::from(SPACE) | i;
            let seq = (seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(i) as u32) ^ i;
            let id = masscan_ip_id(dst, port, seq);
            // Classify exactly as the telescope would off the wire: the
            // static-ID check shadows the Masscan formula on collision.
            let fp = if id == 54_321 { Fingerprint::ZMap } else { Fingerprint::Masscan };
            det.ingest_info(&ProbeInfo {
                src_ip: src,
                dst_ip: dst,
                dst_port: port,
                fingerprint: fp,
                is_tcp_syn: true,
            });
        }
        let scans = det.scans();
        prop_assert_eq!(scans.len(), 1);
        prop_assert_eq!(scans[0].tool, Fingerprint::Masscan);
    }
}
