//! Crash tolerance, end to end: the checkpoint journal's encode/decode
//! contract (property-tested), and kill-then-resume equivalence — a scan
//! killed at an arbitrary NIC event and resumed from its journal must
//! discover exactly the hosts an uninterrupted run discovers.

use proptest::prelude::*;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;
use std::path::PathBuf;
use zmap::core::checkpoint::{CheckpointPolicy, CheckpointState};
use zmap::core::metadata::Counters;
use zmap::netsim::loss::LossModel;
use zmap::prelude::*;

fn arb_counters() -> impl Strategy<Value = Counters> {
    prop::collection::vec(any::<u64>(), 19..20).prop_map(|v| Counters {
        targets_total: v[0],
        sent: v[1],
        responses_validated: v[2],
        responses_discarded: v[3],
        duplicates_suppressed: v[4],
        unique_successes: v[5],
        unique_failures: v[6],
        send_retries: v[7],
        sendto_failures: v[8],
        responses_corrupted: v[9],
        lock_poison_recoveries: v[10],
        checkpoints_written: v[11],
        resume_count: v[12],
        watchdog_stalls: v[13],
        shutdown_clean: v[14],
        jobs_admitted: v[15],
        worker_restarts: v[16],
        jobs_degraded: v[17],
        migrations: v[18],
    })
}

fn arb_state() -> impl Strategy<Value = CheckpointState> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u32>(), 1u32..=64, any::<u64>()),
        prop::collection::vec(any::<u64>(), 1..16),
        (any::<u64>(), any::<bool>()),
        arb_counters(),
    )
        .prop_map(
            |(
                (config_digest, seed, group_prime, generator),
                (offset, shard, num_shards, dedup_high_water),
                positions,
                (virtual_time_ns, complete),
                counters,
            )| {
                CheckpointState {
                    config_digest,
                    seed,
                    group_prime,
                    generator,
                    offset,
                    shard,
                    num_shards,
                    num_subshards: positions.len() as u32,
                    positions,
                    dedup_high_water,
                    virtual_time_ns,
                    complete,
                    counters,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every journal the writer can produce, the reader accepts verbatim.
    #[test]
    fn journal_roundtrips_exactly(state in arb_state()) {
        let bytes = state.to_bytes();
        let back = CheckpointState::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, state);
    }

    /// Flipping any single bit anywhere in the journal — header, fields,
    /// positions, counters, or the checksum trailer itself — makes the
    /// whole file unreadable. A resume never acts on silent corruption.
    #[test]
    fn journal_rejects_any_bit_flip(state in arb_state(), which in any::<u64>()) {
        let mut bytes = state.to_bytes();
        let bit = (which % (bytes.len() as u64 * 8)) as usize;
        bytes[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(
            CheckpointState::from_bytes(&bytes).is_err(),
            "bit {} flipped undetected", bit
        );
    }
}

// ---------------------------------------------------------------------------
// Kill/resume equivalence.
// ---------------------------------------------------------------------------

const PREFIX: [u8; 2] = [66, 7];

fn scan_config(seed: u64) -> ScanConfig {
    let mut cfg = ScanConfig::new(Ipv4Addr::new(192, 0, 2, 1));
    cfg.allowlist_prefix(Ipv4Addr::new(PREFIX[0], PREFIX[1], 0, 0), 24);
    cfg.apply_default_blocklist = false;
    cfg.seed = seed;
    cfg.rate_pps = 1_000; // slow enough that sends and deliveries interleave
    cfg.cooldown_secs = 2;
    cfg.max_retries = 3;
    cfg
}

fn world(world_seed: u64, kill_at: Option<u64>) -> SimNet {
    let model = ServiceModel {
        live_fraction: 1.0, // port 80 open on a seed-dependent subset
        ..ServiceModel::default()
    };
    let faults = match kill_at {
        Some(k) => FaultPlan::builder().kill_at(k).build(),
        None => FaultPlan::none(),
    };
    SimNet::new(WorldConfig {
        seed: world_seed,
        model,
        faults,
        loss: LossModel::NONE,
        ..WorldConfig::default()
    })
}

fn discovered(summary: &ScanSummary) -> BTreeSet<(std::net::IpAddr, u16)> {
    summary.results.iter().map(|r| (r.saddr, r.sport)).collect()
}

fn journal_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("zmap-ckpt-resume-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

/// Kills a scan at NIC event `kill_at`, resumes it from the journal on a
/// fault-free world with the same seed, and checks the union of the two
/// attempts' discoveries equals an uninterrupted run's — for kill points
/// in the send phase, near its end, and in mid-cooldown.
#[test]
fn kill_anywhere_then_resume_equals_uninterrupted() {
    for (world_seed, scan_seed, kill_at) in [
        (5u64, 11u64, 64u64),  // early: mid-send
        (5, 11, 250),          // late: last sends and first responses
        (5, 11, 420),          // mid-cooldown: all 256 sends done
        (77, 3, 64),
        (77, 3, 420),
    ] {
        let name = format!("kill-{world_seed}-{scan_seed}-{kill_at}.ckpt");
        let path = journal_path(&name);
        let policy = CheckpointPolicy::new(&path).with_interval_ns(10_000_000);

        // Ground truth: the same scan, never interrupted.
        let cfg = scan_config(scan_seed);
        let net = world(world_seed, None);
        let baseline = Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 1)))
            .unwrap()
            .run();
        assert!(!baseline.killed);
        let want = discovered(&baseline);
        assert!(!want.is_empty());

        // Attempt 1: killed at the scheduled NIC event.
        let cfg = scan_config(scan_seed);
        let net = world(world_seed, Some(kill_at));
        let first = Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 1)))
            .unwrap()
            .run_with(RunOptions {
                checkpoint: Some(policy.clone()),
                ..RunOptions::default()
            });
        assert!(first.killed, "kill_at {kill_at} must fire");
        assert_eq!(first.shutdown_clean, 0, "a killed scan is not clean");
        if kill_at >= 420 {
            assert_eq!(first.sent, 256, "mid-cooldown kill: all sends done");
        }
        let journal = CheckpointState::load(&path).unwrap();
        assert!(!journal.complete);

        // Attempt 2: resume on a fault-free world with the same seed.
        let cfg = scan_config(scan_seed);
        let net = world(world_seed, None);
        let second = Scanner::resume(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 1)), &journal)
            .unwrap()
            .run_with(RunOptions {
                checkpoint: Some(policy),
                ..RunOptions::default()
            });
        assert!(!second.killed);
        assert_eq!(second.resume_count, 1);
        assert_eq!(second.shutdown_clean, 1);
        assert!(second.sent >= 256, "cumulative sends cover the space");

        let mut got = discovered(&first);
        got.extend(discovered(&second));
        assert_eq!(
            got, want,
            "union of killed+resumed discoveries must equal uninterrupted \
             (world {world_seed}, scan {scan_seed}, kill_at {kill_at})"
        );

        let final_journal = CheckpointState::load(&path).unwrap();
        assert!(final_journal.complete);
        assert_eq!(final_journal.counters.resume_count, 1);
    }
}

/// A graceful interrupt (shutdown token) leaves a resumable journal and
/// well-formed streams; resuming finishes the scan with full coverage.
#[test]
fn graceful_interrupt_then_resume_covers_everything() {
    let path = journal_path("graceful.ckpt");
    let policy = CheckpointPolicy::new(&path).with_interval_ns(10_000_000);

    let cfg = scan_config(21);
    let net = world(9, None);
    let baseline = Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 1)))
        .unwrap()
        .run();
    let want = discovered(&baseline);

    // Interrupt before the first probe: the cleanest possible shutdown.
    let token = ShutdownToken::new();
    token.request();
    let cfg = scan_config(21);
    let net = world(9, None);
    let first = Scanner::new(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 1)))
        .unwrap()
        .run_with(RunOptions {
            checkpoint: Some(policy.clone()),
            shutdown: Some(token),
            ..RunOptions::default()
        });
    assert!(!first.killed);
    assert_eq!(first.sent, 0, "interrupt honored at the cycle boundary");
    assert_eq!(first.shutdown_clean, 1, "an interrupt is still orderly");
    // The metadata stream is well-formed even for an empty attempt.
    assert!(first.metadata.to_json().contains("\"counters\""));

    let journal = CheckpointState::load(&path).unwrap();
    assert!(!journal.complete, "interrupted scans resume where they left off");

    let cfg = scan_config(21);
    let net = world(9, None);
    let second = Scanner::resume(cfg, net.transport(Ipv4Addr::new(192, 0, 2, 1)), &journal)
        .unwrap()
        .run_with(RunOptions {
            checkpoint: Some(policy),
            ..RunOptions::default()
        });
    assert_eq!(discovered(&second), want);
    assert!(CheckpointState::load(&path).unwrap().complete);
}
