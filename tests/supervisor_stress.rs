//! Supervisor stress and convergence suite (DESIGN.md §10).
//!
//! The headline scenario is the CI stress job's shape: 24 interleaved
//! multi-tenant jobs on a 4-worker pool with seeded kills, panics, and
//! stalls on three of the workers. Every job must end `Completed` with
//! results byte-identical to an uninterrupted solo run of the same task
//! slices, or deterministically `Degraded`; and the whole scenario —
//! events, job reports, counters — must be byte-identical across two
//! runs.
//!
//! Property tests pin the two convergence lemmas the restart policy
//! leans on: the backoff curve is monotone non-decreasing and capped,
//! and a job whose first attempt dies at *any* worker-event ordinal
//! (any fault kind) still converges to a terminal outcome with exact
//! results when it completes.

use proptest::prelude::*;
use std::net::Ipv4Addr;
use std::path::PathBuf;
use zmap::core::supervisor::fairshare::backoff_delay_ns;
use zmap::netsim::loss::LossModel;
use zmap::prelude::*;

fn dense_world(seed: u64) -> WorldConfig {
    WorldConfig {
        seed,
        model: ServiceModel::dense(&[80]),
        loss: LossModel::NONE,
        ..WorldConfig::default()
    }
}

/// A /26 job config; `batch` is small so stall faults (which count whole
/// NIC calls) land inside an attempt instead of after it.
fn job_cfg(third_octet: u8, rate: u64, seed: u64) -> ScanConfig {
    let mut cfg = ScanConfig::new(Ipv4Addr::new(192, 0, 2, 9));
    cfg.allowlist_prefix(Ipv4Addr::new(10, 70, third_octet, 0), 26);
    cfg.apply_default_blocklist = false;
    cfg.ports = vec![80];
    cfg.rate_pps = rate;
    cfg.cooldown_secs = 1;
    cfg.seed = seed;
    cfg.batch = 4;
    cfg
}

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("zmap-supervisor-stress").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The task slice the supervisor runs: `index` of `tasks` shards at the
/// granted per-task rate (mirrors `supervisor::task_config`).
fn task_slice(whole: &ScanConfig, index: u32, tasks: u32, rate_pps: u64) -> ScanConfig {
    let mut cfg = whole.clone();
    cfg.shard = index;
    cfg.num_shards = tasks;
    cfg.subshards = 1;
    cfg.rate_pps = rate_pps;
    cfg
}

/// The byte-identity reference: each task slice run solo on a fresh,
/// uninterrupted engine, merged the way the supervisor merges.
fn solo_results(spec: &JobSpec, per_task_pps: u64) -> Vec<ScanResult> {
    let mut all = Vec::new();
    for i in 0..spec.tasks {
        let cfg = task_slice(&spec.cfg, i, spec.tasks, per_task_pps);
        let net = SimNet::new(spec.world.clone());
        let summary = Scanner::new(cfg, net.transport(spec.cfg.source_ip))
            .expect("task slice is a valid config")
            .run();
        assert!(!summary.killed, "solo reference must run uninterrupted");
        all.extend(summary.results);
    }
    all.sort_by_key(|r| (r.ts_ns, r.saddr, r.sport, r.ttl, r.success));
    all.dedup();
    all
}

/// Serializes everything determinism promises about a run.
fn report_bytes(report: &SupervisorReport) -> String {
    let mut lines = Vec::new();
    for e in &report.events {
        lines.push(serde_json::to_string(e).expect("event serializes"));
    }
    for j in &report.jobs {
        lines.push(serde_json::to_string(j).expect("job serializes"));
    }
    lines.push(serde_json::to_string(&report.counters).expect("counters serialize"));
    lines.join("\n")
}

/// 24 jobs, 6 tenants, 4 workers, faults on workers 0–3: two kills, a
/// panic, a stall, and a second kill — the ISSUE's acceptance scenario.
fn stress_scenario(tag: &str) -> (Vec<JobSpec>, SupervisorReport) {
    let dir = test_dir(&format!("stress-{tag}"));
    let mut cfg = SupervisorConfig::new(4, 1_000_000, dir);
    cfg.worker_faults = WorkerFaultPlan::none()
        .with(0, 1, WorkerFaultKind::Kill, 20)
        .with(0, 3, WorkerFaultKind::Kill, 25)
        .with(1, 2, WorkerFaultKind::Panic, 12)
        .with(2, 1, WorkerFaultKind::Stall, 10)
        .with(3, 2, WorkerFaultKind::Kill, 18);
    let mut sup = Supervisor::new(cfg);
    let mut specs = Vec::new();
    for j in 0..24u8 {
        let spec = JobSpec {
            id: format!("job-{j:02}"),
            tenant: format!("tenant-{}", j % 6),
            cfg: job_cfg(j, 100, 100 + u64::from(j)),
            world: dense_world(5),
            tasks: 1 + u32::from(j) % 2,
            submit_at_ns: u64::from(j) * 25_000_000,
        };
        sup.submit(spec.clone()).expect("stress specs are valid");
        specs.push(spec);
    }
    (specs, sup.run())
}

#[test]
fn stress_24_jobs_4_workers_with_seeded_deaths() {
    let (specs, report) = stress_scenario("main");
    assert_eq!(report.counters.jobs_admitted, 24);
    assert_eq!(report.jobs.len(), 24);
    // All five scheduled faults land: 36 tasks across 4 workers reach
    // every faulted (worker, attempt) slot.
    assert!(
        report.counters.worker_restarts >= 3,
        "expected the seeded deaths to land, saw {}",
        report.counters.worker_restarts
    );
    for kind in ["kill", "panic", "stall"] {
        assert!(
            report
                .events
                .iter()
                .any(|e| e.kind == "worker_death" && e.detail.contains(kind)),
            "no {kind} death in the event stream"
        );
    }
    // Kills and stalls leave journals behind; at least one migrated.
    assert!(report.counters.migrations >= 1);

    // Every job is terminal, and every completed job's merged results
    // are byte-identical to its uninterrupted solo decomposition.
    for (job, spec) in report.jobs.iter().zip(&specs) {
        match job.outcome {
            JobOutcome::Completed => {
                assert_eq!(
                    job.results,
                    solo_results(spec, job.per_task_pps),
                    "{}: recovery must be invisible in the output",
                    job.id
                );
                assert_eq!(job.results.len(), 64, "{}: dense /26 answers fully", job.id);
            }
            JobOutcome::Degraded => {
                // Legal terminal state; determinism is pinned below.
            }
        }
    }
    // The status stream is ordered by virtual time.
    assert!(report.events.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
}

#[test]
fn stress_scenario_is_byte_identical_across_runs() {
    let (_, a) = stress_scenario("double-a");
    let (_, b) = stress_scenario("double-b");
    assert_eq!(
        report_bytes(&a),
        report_bytes(&b),
        "scheduling must be a pure function of the scenario"
    );
}

/// A crash-looping job degrades; a healthy job sharing the pool still
/// completes exactly — and both outcomes are deterministic.
#[test]
fn breaker_degrades_deterministically_without_collateral() {
    let run = |tag: &str| {
        let dir = test_dir(&format!("degrade-{tag}"));
        let mut cfg = SupervisorConfig::new(1, 1_000_000, dir);
        cfg.breaker_limit = 3;
        cfg.worker_faults = WorkerFaultPlan::none()
            .with(0, 1, WorkerFaultKind::Kill, 10)
            .with(0, 2, WorkerFaultKind::Kill, 10)
            .with(0, 3, WorkerFaultKind::Kill, 10);
        let mut sup = Supervisor::new(cfg);
        let doomed = JobSpec {
            id: "doomed".into(),
            tenant: "alice".into(),
            cfg: job_cfg(30, 100, 31),
            world: dense_world(5),
            tasks: 1,
            submit_at_ns: 0,
        };
        // Arrives after the doomed job has consumed the three faulted
        // attempt slots — faults key on (worker, attempt), so an early
        // neighbour would catch one of the scheduled kills itself.
        let healthy = JobSpec {
            id: "healthy".into(),
            tenant: "bob".into(),
            cfg: job_cfg(31, 100, 32),
            world: dense_world(5),
            tasks: 1,
            submit_at_ns: 20_000_000_000,
        };
        let mut specs = Vec::new();
        for s in [doomed, healthy] {
            sup.submit(s.clone()).expect("valid");
            specs.push(s);
        }
        (specs, sup.run())
    };
    let (specs, report) = run("a");
    assert_eq!(report.jobs[0].outcome, JobOutcome::Degraded);
    assert_eq!(report.jobs[0].restarts, 3);
    assert_eq!(report.counters.jobs_degraded, 1);
    assert_eq!(report.jobs[1].outcome, JobOutcome::Completed);
    assert_eq!(
        report.jobs[1].results,
        solo_results(&specs[1], report.jobs[1].per_task_pps),
        "a neighbour's crash loop must not perturb a healthy job"
    );
    let (_, again) = run("b");
    assert_eq!(report_bytes(&report), report_bytes(&again));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The restart backoff curve is monotone non-decreasing in the
    /// failure count and never exceeds `max(cap, base)` — the two
    /// properties that make "requeue with backoff" converge instead of
    /// thrash or overflow.
    #[test]
    fn backoff_is_monotone_and_capped(
        base in 1u64..=20_000_000_000,
        cap in 1u64..=60_000_000_000,
        failures in 1u32..=512,
    ) {
        let here = backoff_delay_ns(base, cap, failures);
        let next = backoff_delay_ns(base, cap, failures + 1);
        prop_assert!(next >= here, "backoff regressed: f={failures} {here} -> {next}");
        let ceiling = cap.max(base);
        prop_assert!(here <= ceiling, "f={failures}: {here} above ceiling {ceiling}");
        prop_assert!(here >= base.min(ceiling), "f={failures}: {here} under base");
        // Far beyond the doubling range the curve is pinned to the cap,
        // never wrapped to something small.
        prop_assert_eq!(backoff_delay_ns(base, cap, 200), ceiling);
    }
}

proptest! {
    // Every case runs real scans; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A job whose first attempt dies at an arbitrary worker-event
    /// ordinal — any fault kind, landing anywhere from the first NIC
    /// call to past the end of the walk — always converges to a
    /// terminal outcome, and when that outcome is `Completed` the
    /// merged results are byte-identical to the uninterrupted run.
    #[test]
    fn job_killed_at_any_ordinal_converges(at in 1u64..=80, kind_idx in 0usize..3) {
        let kind = [WorkerFaultKind::Kill, WorkerFaultKind::Panic, WorkerFaultKind::Stall]
            [kind_idx];
        let dir = test_dir(&format!("prop-{kind_idx}-{at}"));
        let mut cfg = SupervisorConfig::new(1, 1_000_000, dir);
        cfg.worker_faults = WorkerFaultPlan::none().with(0, 1, kind, at);
        let mut sup = Supervisor::new(cfg);
        let spec = JobSpec {
            id: format!("prop-{kind_idx}-{at}"),
            tenant: "t".into(),
            cfg: job_cfg(40, 100, 7 + at),
            world: dense_world(5),
            tasks: 1,
            submit_at_ns: 0,
        };
        sup.submit(spec.clone()).expect("valid");
        let report = sup.run();
        let job = &report.jobs[0];
        match job.outcome {
            JobOutcome::Completed => {
                prop_assert_eq!(
                    &job.results,
                    &solo_results(&spec, job.per_task_pps),
                    "fault {:?}@{} left a visible scar", kind, at
                );
            }
            JobOutcome::Degraded => {
                // Also terminal: the breaker parked it rather than
                // crash-looping. A single scheduled fault cannot trip a
                // breaker_limit of 3, so this arm is unreachable here —
                // but the property is "terminal", not "completed".
                prop_assert!(report.counters.jobs_degraded >= 1);
            }
        }
        // The single scheduled fault produced at most one restart.
        prop_assert!(job.restarts <= 1, "restarts {} for one fault", job.restarts);
    }
}
