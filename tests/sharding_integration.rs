//! Integration: multi-machine sharded scans partition the target space
//! exactly — for both sharding algorithms, with threads, and multiport.

use std::collections::HashSet;
use std::net::Ipv4Addr;
use zmap::prelude::*;
use zmap_netsim::loss::LossModel;

fn run_shard(
    alg: ShardAlgorithm,
    shard: u32,
    num_shards: u32,
    subshards: u32,
    ports: &[u16],
) -> ScanSummary {
    let net = SimNet::new(WorldConfig {
        seed: 21,
        model: ServiceModel::dense(ports),
        loss: LossModel::NONE,
        ..WorldConfig::default()
    });
    let src = Ipv4Addr::new(192, 0, 2, 50 + shard as u8);
    let mut cfg = ScanConfig::new(src);
    cfg.allowlist_prefix(Ipv4Addr::new(77, 30, 0, 0), 20); // 4096 IPs
    cfg.apply_default_blocklist = false;
    cfg.ports = ports.to_vec();
    cfg.rate_pps = 1_000_000;
    cfg.seed = 777; // same permutation on every machine
    cfg.shard = shard;
    cfg.num_shards = num_shards;
    cfg.subshards = subshards;
    cfg.shard_algorithm = alg;
    cfg.cooldown_secs = 2;
    Scanner::new(cfg, net.transport(src)).unwrap().run()
}

fn assert_exact_partition(alg: ShardAlgorithm, num_shards: u32, subshards: u32, ports: &[u16]) {
    let expected = 4096 * ports.len() as u64;
    let mut union = HashSet::new();
    let mut sent = 0u64;
    for shard in 0..num_shards {
        let s = run_shard(alg, shard, num_shards, subshards, ports);
        sent += s.sent;
        for r in &s.results {
            assert!(
                union.insert((r.saddr, r.sport)),
                "{alg:?}: {}:{} found by two shards",
                r.saddr,
                r.sport
            );
        }
    }
    assert_eq!(sent, expected, "{alg:?}: probes must cover space exactly");
    assert_eq!(union.len() as u64, expected, "{alg:?}: dense world finds all");
}

#[test]
fn pizza_three_machines_two_threads() {
    assert_exact_partition(ShardAlgorithm::Pizza, 3, 2, &[80]);
}

#[test]
fn interleaved_three_machines_two_threads() {
    assert_exact_partition(ShardAlgorithm::Interleaved, 3, 2, &[80]);
}

#[test]
fn pizza_multiport_five_machines() {
    assert_exact_partition(ShardAlgorithm::Pizza, 5, 1, &[80, 443]);
}

#[test]
fn interleaved_multiport_awkward_counts() {
    // 7 machines × 3 threads over a non-dividing space: the historical
    // off-by-one territory.
    assert_exact_partition(ShardAlgorithm::Interleaved, 7, 3, &[80, 443, 8080]);
}

#[test]
fn algorithms_cover_identical_sets_in_different_orders() {
    let a = run_shard(ShardAlgorithm::Pizza, 0, 1, 1, &[80]);
    let b = run_shard(ShardAlgorithm::Interleaved, 0, 1, 1, &[80]);
    let sa: HashSet<_> = a.results.iter().map(|r| r.saddr).collect();
    let sb: HashSet<_> = b.results.iter().map(|r| r.saddr).collect();
    assert_eq!(sa, sb, "same space, same coverage");
}
