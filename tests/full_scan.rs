//! Integration: complete scans over the simulated Internet, checking the
//! engine-level invariants the paper's methodology depends on.

use std::collections::HashSet;
use std::net::Ipv4Addr;
use zmap::prelude::*;
use zmap_netsim::loss::LossModel;
use zmap_netsim::profile::{host_profile, port_open};

fn sparse_world(seed: u64) -> WorldConfig {
    // Ground-truth accounting below enumerates hosts only; keep packed
    // middlebox prefixes out of this world (they are exercised by the
    // L7 tests and exp_l4_l7).
    let model = ServiceModel {
        live_fraction: 0.2,
        middlebox_fraction: 0.0,
        ..ServiceModel::default()
    };
    WorldConfig {
        seed,
        model,
        loss: LossModel::NONE,
        ..WorldConfig::default()
    }
}

fn scan(world: WorldConfig, seed: u64, ports: &[u16]) -> ScanSummary {
    let net = SimNet::new(world);
    let src = Ipv4Addr::new(192, 0, 2, 1);
    let mut cfg = ScanConfig::new(src);
    cfg.allowlist_prefix(Ipv4Addr::new(55, 44, 0, 0), 17);
    cfg.apply_default_blocklist = false;
    cfg.ports = ports.to_vec();
    cfg.rate_pps = 1_000_000;
    cfg.seed = seed;
    cfg.cooldown_secs = 2;
    Scanner::new(cfg, net.transport(src)).unwrap().run()
}

#[test]
fn scan_results_match_ground_truth_exactly() {
    // With no loss, the scanner must find exactly the hosts the
    // procedural population says are live with the port open and
    // reachable by an MSS-bearing SYN.
    let world = sparse_world(9);
    let summary = scan(world.clone(), 3, &[80]);

    let mut expected = HashSet::new();
    for i in 0..(1u32 << 15) {
        let ip = 0x372C0000u32 + i; // 55.44.0.0/17
        if let Some(p) = host_profile(world.seed, ip, &world.model) {
            if port_open(world.seed, ip, 80, &world.model) {
                // MSS-only probes carry one option: only the multi-option
                // and OS-ordering tails won't answer.
                use zmap_netsim::profile::OptionSensitivity::*;
                match p.sensitivity {
                    AcceptsAny | RequiresAnyOption => {
                        expected.insert(Ipv4Addr::from(ip));
                    }
                    RequiresMultiOption | RequiresOsOrdering => {}
                }
            }
        }
    }
    let found: HashSet<Ipv4Addr> = summary
        .results
        .iter()
        .filter_map(|r| match r.saddr {
            std::net::IpAddr::V4(v4) => Some(v4),
            std::net::IpAddr::V6(_) => None,
        })
        .collect();
    assert_eq!(found, expected, "scanner output must equal ground truth");
    assert_eq!(summary.sent, 1 << 15);
}

#[test]
fn hitrates_are_internet_plausible() {
    // Default model, default ports: hitrate should be ~1% (port 80 on
    // the real Internet is ~1.2-1.5% of all IPv4).
    let summary = scan(
        WorldConfig {
            seed: 4,
            loss: LossModel::NONE,
            ..WorldConfig::default()
        },
        1,
        &[80],
    );
    let hit = summary.hitrate();
    assert!(hit > 0.005 && hit < 0.03, "hitrate {hit}");
}

#[test]
fn deterministic_across_runs() {
    let a = scan(sparse_world(5), 2, &[80, 443]);
    let b = scan(sparse_world(5), 2, &[80, 443]);
    assert_eq!(a.sent, b.sent);
    assert_eq!(a.unique_successes, b.unique_successes);
    let ra: Vec<_> = a.results.iter().map(|r| (r.saddr, r.sport, r.ts_ns)).collect();
    let rb: Vec<_> = b.results.iter().map(|r| (r.saddr, r.sport, r.ts_ns)).collect();
    assert_eq!(ra, rb, "identical seeds must replay identically");
}

#[test]
fn no_duplicate_targets_in_output() {
    let summary = scan(sparse_world(6), 7, &[80, 443, 8080]);
    let mut seen = HashSet::new();
    for r in &summary.results {
        assert!(seen.insert((r.saddr, r.sport)), "{}:{} twice", r.saddr, r.sport);
    }
}

#[test]
fn icmp_and_tcp_find_consistent_populations() {
    // Echo scan finds live hosts; SYN scan finds live hosts with the
    // port open — a strict subset (all respond in a lossless world).
    let world = sparse_world(8);
    let tcp = scan(world.clone(), 1, &[80]);
    let net = SimNet::new(world);
    let src = Ipv4Addr::new(192, 0, 2, 1);
    let mut cfg = ScanConfig::new(src);
    cfg.allowlist_prefix(Ipv4Addr::new(55, 44, 0, 0), 17);
    cfg.apply_default_blocklist = false;
    cfg.probe = ProbeKind::IcmpEcho;
    cfg.rate_pps = 1_000_000;
    cfg.cooldown_secs = 2;
    let icmp = Scanner::new(cfg, net.transport(src)).unwrap().run();
    assert!(
        icmp.unique_successes > tcp.unique_successes,
        "more hosts answer ping ({}) than have port 80 open ({})",
        icmp.unique_successes,
        tcp.unique_successes
    );
}

#[test]
fn loss_shapes_match_wan_et_al() {
    // Single-probe scan under the default loss model misses ~2.7%.
    let world_lossless = sparse_world(12);
    let truth = scan(world_lossless, 3, &[80]).unique_successes as f64;
    let mut lossy_world = sparse_world(12);
    lossy_world.loss = LossModel::default();
    let found = scan(lossy_world, 3, &[80]).unique_successes as f64;
    let miss = 1.0 - found / truth;
    // Bounds are loose: the exact value depends on where transient-loss
    // draws land in the (seed-derived) probe order.
    assert!(miss > 0.010 && miss < 0.045, "miss rate {miss}");
}
