//! Golden-snapshot harness: a fixed seed×config matrix runs through
//! both engines and every byte of the four output streams plus the
//! metrics dump is compared against snapshots checked into
//! `tests/golden/`. Any behavior drift — an extra trace event, a
//! reordered CSV row, a histogram bucket moving — fails here with the
//! offending section named, which is exactly the class of regression
//! per-field assertions let through.
//!
//! Regenerate after an *intentional* change with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test golden_outputs
//! git diff tests/golden/   # review the drift before committing it
//! ```
//!
//! On mismatch the actual bytes land in `target/golden-actual/<name>.txt`
//! so CI can upload them as an artifact for offline diffing.

use std::net::Ipv4Addr;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use zmap::prelude::*;
use zmap_core::log::{Level, Logger};
use zmap_core::output::OutputModule;
use zmap_core::parallel::{run_parallel, SharedSimTransport};
use zmap_netsim::loss::LossModel;

fn world_cfg(seed: u64) -> WorldConfig {
    WorldConfig {
        seed,
        model: ServiceModel::default(),
        loss: LossModel::NONE,
        faults: FaultPlan::none(),
        ..WorldConfig::default()
    }
}

/// Renders results as the CSV data stream (stream #1).
fn data_section(results: &[zmap_core::output::ScanResult]) -> String {
    let mut out = OutputModule::new(OutputFormat::Csv, Vec::new());
    for r in results {
        out.record(r).expect("Vec sink never fails");
    }
    String::from_utf8(out.finish().expect("Vec sink never fails")).expect("csv is utf8")
}

/// One snapshot: named sections, each a byte-exact stream.
fn render(sections: &[(&str, String)]) -> String {
    let mut s = String::new();
    for (name, body) in sections {
        s.push_str(&format!("== {name} ==\n"));
        s.push_str(body);
        if !body.ends_with('\n') {
            s.push('\n');
        }
    }
    s
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

/// Compares `actual` against the checked-in snapshot, or rewrites the
/// snapshot when `UPDATE_GOLDEN=1`.
fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("write golden snapshot");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden snapshot {}: {e}; run UPDATE_GOLDEN=1 cargo test --test golden_outputs", path.display())
    });
    if expected != actual {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target/golden-actual");
        std::fs::create_dir_all(&dir).expect("create golden-actual dir");
        let actual_path = dir.join(format!("{name}.txt"));
        std::fs::write(&actual_path, actual).expect("write actual snapshot");
        // Name the first diverging section + line for a readable failure.
        let mut at = "end of file".to_string();
        let mut section = "?".to_string();
        for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
            if let Some(s) = e.strip_prefix("== ") {
                section = s.trim_end_matches(" ==").to_string();
            }
            if e != a {
                at = format!("line {} (section {section}):\n  expected: {e}\n  actual:   {a}", i + 1);
                break;
            }
        }
        panic!(
            "golden snapshot {name} drifted at {at}\nfull actual written to {}\n\
             if the change is intentional: UPDATE_GOLDEN=1 cargo test --test golden_outputs",
            actual_path.display()
        );
    }
}

/// Runs the single-threaded engine and snapshots all five sections:
/// data, logs, status, metadata, metrics.
fn scan_and_snapshot(name: &str, mutate: impl FnOnce(&mut ScanConfig)) {
    let src = Ipv4Addr::new(192, 0, 2, 9);
    let net = SimNet::new(world_cfg(5));
    let mut cfg = ScanConfig::new(src);
    cfg.apply_default_blocklist = false;
    cfg.seed = 3;
    cfg.rate_pps = 100_000;
    cfg.cooldown_secs = 2;
    mutate(&mut cfg);
    let logger = Logger::memory(Level::Debug);
    let summary = Scanner::with_logger(cfg, net.transport(src), logger.clone())
        .expect("golden config is valid")
        .run();
    assert!(!summary.killed, "golden scans are fault-free");

    let logs = logger
        .lines()
        .iter()
        .map(|(lvl, m)| format!("{lvl:?} {m}\n"))
        .collect::<String>();
    let status = summary
        .status
        .iter()
        .map(|s| serde_json::to_string(s).expect("status serializes") + "\n")
        .collect::<String>();
    let actual = render(&[
        ("data (csv)", data_section(&summary.results)),
        ("logs", logs),
        ("status (json)", status),
        ("metadata (json)", summary.metadata.to_json()),
        (
            "metrics (json)",
            serde_json::to_string(&summary.metrics).expect("metrics serialize"),
        ),
    ]);
    check_golden(name, &actual);
}

#[test]
fn golden_tcp_single_port() {
    scan_and_snapshot("tcp80_24", |cfg| {
        cfg.allowlist_prefix(Ipv4Addr::new(81, 40, 7, 0), 24);
    });
}

#[test]
fn golden_tcp_multiport_windowed() {
    scan_and_snapshot("tcp_multiport_25", |cfg| {
        cfg.allowlist_prefix(Ipv4Addr::new(81, 40, 8, 0), 25);
        cfg.ports = vec![80, 443];
        cfg.dedup = DedupMethod::Window(1000);
        cfg.report_failures = true;
    });
}

#[test]
fn golden_icmp_echo() {
    scan_and_snapshot("icmp_24", |cfg| {
        cfg.allowlist_prefix(Ipv4Addr::new(81, 40, 9, 0), 24);
        cfg.probe = ProbeKind::IcmpEcho;
    });
}

/// The IPv6 scenario shared by the v6 golden snapshots: two prefixes
/// with different procedural host patterns, partial density in one so
/// the snapshot pins misses as well as hits.
const V6_PREFIXES: &str = "2001:db8:a::/48 pattern=low bits=6 density=1.0\n\
                           2001:db8:b::/48 pattern=eui64 bits=5 density=0.5\n";

/// The v6 counterpart of [`scan_and_snapshot`]: same five sections, same
/// byte-exactness, scanned over the procedural v6 population.
fn scan_and_snapshot_v6(name: &str, mutate: impl FnOnce(&mut ScanConfig)) {
    let src = Ipv4Addr::new(192, 0, 2, 9);
    let mut wc = world_cfg(5);
    wc.v6 = Some(
        V6Population::from_prefix_list(V6_PREFIXES, vec![443]).expect("golden prefixes parse"),
    );
    let net = SimNet::new(wc);
    let mut cfg = ScanConfig::new(src);
    cfg.ipv6 = Some(Ipv6Config {
        source_ip: "2001:db8:ffff::1".parse().unwrap(),
        prefix_list: V6_PREFIXES.into(),
    });
    cfg.ports = vec![443];
    cfg.seed = 3;
    cfg.rate_pps = 100_000;
    cfg.cooldown_secs = 2;
    mutate(&mut cfg);
    let logger = Logger::memory(Level::Debug);
    let summary = Scanner::with_logger(cfg, net.transport(src), logger.clone())
        .expect("golden config is valid")
        .run();
    assert!(!summary.killed, "golden scans are fault-free");

    let logs = logger
        .lines()
        .iter()
        .map(|(lvl, m)| format!("{lvl:?} {m}\n"))
        .collect::<String>();
    let status = summary
        .status
        .iter()
        .map(|s| serde_json::to_string(s).expect("status serializes") + "\n")
        .collect::<String>();
    let actual = render(&[
        ("data (csv)", data_section(&summary.results)),
        ("logs", logs),
        ("status (json)", status),
        ("metadata (json)", summary.metadata.to_json()),
        (
            "metrics (json)",
            serde_json::to_string(&summary.metrics).expect("metrics serialize"),
        ),
    ]);
    check_golden(name, &actual);
}

#[test]
fn golden_tcp_over_v6() {
    scan_and_snapshot_v6("tcp443_v6", |_| {});
}

#[test]
fn golden_icmpv6_echo() {
    scan_and_snapshot_v6("icmpv6_echo_v6", |cfg| {
        cfg.probe = ProbeKind::IcmpEcho;
    });
}

/// The threaded engine: timestamps of *status samples* depend on thread
/// scheduling, so the snapshot holds the scheduling-independent parts —
/// the sorted result set, the final counters, and the metrics dump
/// (histogram merges are order-independent bucket adds; the recorded
/// multiset is fixed by the per-thread interleaved schedule).
#[test]
fn golden_parallel_two_threads() {
    let src = Ipv4Addr::new(192, 0, 2, 9);
    let world = Arc::new(Mutex::new(World::new(world_cfg(5))));
    let transport = SharedSimTransport::new(world, src);
    let mut cfg = ScanConfig::new(src);
    cfg.allowlist_prefix(Ipv4Addr::new(81, 41, 0, 0), 24);
    cfg.apply_default_blocklist = false;
    cfg.seed = 3;
    cfg.subshards = 2;
    cfg.rate_pps = 100_000;
    cfg.cooldown_secs = 2;
    let summary = run_parallel(&cfg, &transport).expect("golden config is valid");
    assert!(!summary.killed, "golden scans are fault-free");

    let mut results = summary.results.clone();
    results.sort_by_key(|r| (r.saddr, r.sport, r.ts_ns));
    let counters = format!(
        "sent={} validated={} dups={} successes={} retries={} sendto_failures={} corrupted={} clean={}\n",
        summary.sent,
        summary.responses_validated,
        summary.duplicates_suppressed,
        summary.unique_successes,
        summary.send_retries,
        summary.sendto_failures,
        summary.responses_corrupted,
        summary.shutdown_clean,
    );
    let actual = render(&[
        ("data (csv, sorted)", data_section(&results)),
        ("counters", counters),
        (
            "metrics (json)",
            serde_json::to_string(&summary.metrics).expect("metrics serialize"),
        ),
    ]);
    check_golden("parallel_2t_24", &actual);
}

/// The TX pipeline (`cfg.tx_pipeline`): decoupling generation from
/// transport must not move a single byte of the scheduling-independent
/// streams. The same scan runs through the combined senders and the
/// ring pipeline; both renders must agree with each other *and* with
/// the checked-in snapshot — so a pipeline regression is caught even if
/// it breaks both engines symmetrically.
#[test]
fn golden_parallel_tx_pipeline() {
    let src = Ipv4Addr::new(192, 0, 2, 9);
    let mut cfg = ScanConfig::new(src);
    cfg.allowlist_prefix(Ipv4Addr::new(81, 41, 0, 0), 24);
    cfg.apply_default_blocklist = false;
    cfg.seed = 3;
    cfg.subshards = 2;
    cfg.rate_pps = 100_000;
    cfg.cooldown_secs = 2;

    let snapshot = |cfg: &ScanConfig| {
        let world = Arc::new(Mutex::new(World::new(world_cfg(5))));
        let transport = SharedSimTransport::new(world, src);
        let summary = run_parallel(cfg, &transport).expect("golden config is valid");
        assert!(!summary.killed, "golden scans are fault-free");
        let mut results = summary.results.clone();
        results.sort_by_key(|r| (r.saddr, r.sport, r.ts_ns));
        let counters = format!(
            "sent={} validated={} dups={} successes={} retries={} sendto_failures={} corrupted={} clean={}\n",
            summary.sent,
            summary.responses_validated,
            summary.duplicates_suppressed,
            summary.unique_successes,
            summary.send_retries,
            summary.sendto_failures,
            summary.responses_corrupted,
            summary.shutdown_clean,
        );
        render(&[
            ("data (csv, sorted)", data_section(&results)),
            ("counters", counters),
        ])
    };

    let combined = snapshot(&cfg);
    cfg.tx_pipeline = true;
    let pipelined = snapshot(&cfg);
    assert_eq!(
        combined, pipelined,
        "ring pipeline must be byte-identical to the combined senders"
    );
    check_golden("parallel_tx_pipeline_24", &pipelined);
}
