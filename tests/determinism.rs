//! Cross-engine determinism: the single-threaded virtual-time Scanner
//! and the multi-threaded wall-clock engine must agree on *what* they
//! found. Timing differs (one is simulated, one is real), but over a
//! lossless world the discovered target set is an invariant of the
//! (seed, constraint) pair, not of the engine.

use std::collections::BTreeSet;
use std::net::Ipv4Addr;
use std::sync::{Arc, Mutex};
use zmap::prelude::*;
use zmap_core::parallel::{run_parallel, SharedSimTransport};
use zmap_netsim::loss::LossModel;

fn world_cfg(seed: u64) -> WorldConfig {
    WorldConfig {
        seed,
        model: ServiceModel::dense(&[80]),
        loss: LossModel::NONE,
        faults: FaultPlan::none(),
        ..WorldConfig::default()
    }
}

fn scan_cfg(src: Ipv4Addr, subshards: u32) -> ScanConfig {
    let mut cfg = ScanConfig::new(src);
    cfg.allowlist_prefix(Ipv4Addr::new(66, 10, 4, 0), 23);
    cfg.apply_default_blocklist = false;
    cfg.seed = 21;
    cfg.subshards = subshards;
    cfg.rate_pps = 400_000;
    cfg.cooldown_secs = 1;
    cfg
}

#[test]
fn sequential_and_parallel_engines_find_the_same_targets() {
    let src = Ipv4Addr::new(192, 0, 2, 9);

    // Engine A: the deterministic single-threaded scanner.
    let net = SimNet::new(world_cfg(31));
    let sequential = Scanner::new(scan_cfg(src, 1), net.transport(src))
        .unwrap()
        .run();

    // Engine B: four real send threads over a fresh copy of the world.
    let world = Arc::new(Mutex::new(World::new(world_cfg(31))));
    let transport = SharedSimTransport::new(world, src);
    let parallel = run_parallel(&scan_cfg(src, 4), &transport).unwrap();

    assert_eq!(sequential.sent, 512);
    assert_eq!(parallel.sent, 512);
    assert_eq!(sequential.unique_successes, parallel.unique_successes);

    let a: BTreeSet<(std::net::IpAddr, u16)> = sequential
        .results
        .iter()
        .map(|r| (r.saddr, r.sport))
        .collect();
    let b: BTreeSet<(std::net::IpAddr, u16)> = parallel
        .results
        .iter()
        .map(|r| (r.saddr, r.sport))
        .collect();
    assert_eq!(a, b, "engines disagree on the discovered set");
    assert_eq!(a.len() as u64, sequential.unique_successes);
}
