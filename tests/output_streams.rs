//! Integration: the four output streams (§5 "Data, Metadata, and Logs")
//! stay separate, schema-stable, and machine-parseable.

use std::net::Ipv4Addr;
use zmap::core::log::{Level, Logger};
use zmap::core::output::{OutputModule, SCHEMA};
use zmap::prelude::*;
use zmap_netsim::loss::LossModel;

fn run_with_logger(logger: Logger) -> ScanSummary {
    let net = SimNet::new(WorldConfig {
        seed: 14,
        model: ServiceModel::dense(&[80]),
        loss: LossModel::NONE,
        ..WorldConfig::default()
    });
    let src = Ipv4Addr::new(192, 0, 2, 3);
    let mut cfg = ScanConfig::new(src);
    cfg.allowlist_prefix(Ipv4Addr::new(88, 1, 2, 0), 24);
    cfg.apply_default_blocklist = false;
    cfg.rate_pps = 128; // 2 virtual seconds of sending → status samples
    cfg.cooldown_secs = 1;
    zmap::core::Scanner::with_logger(cfg, net.transport(src), logger)
        .unwrap()
        .run()
}

#[test]
fn all_four_streams_are_populated_and_distinct() {
    let logger = Logger::memory(Level::Debug);
    let summary = run_with_logger(logger.clone());

    // Stream 1: data records.
    assert_eq!(summary.results.len(), 256);

    // Stream 2: logs, leveled, human-oriented.
    let logs = logger.lines();
    assert!(logs.iter().any(|(l, m)| *l == Level::Info && m.contains("scan configured")));

    // Stream 3: real-time status samples at 1 Hz of virtual time.
    assert!(summary.status.len() >= 2, "{} samples", summary.status.len());
    for s in &summary.status {
        assert!(s.send_rate <= 256.0 + 1.0);
    }

    // Stream 4: machine-readable metadata.
    let v: serde_json::Value = serde_json::from_str(&summary.metadata.to_json()).unwrap();
    assert_eq!(v["counters"]["unique_successes"], 256);
    // Data never leaks into metadata and vice versa: metadata has no
    // per-host records.
    assert!(v.get("results").is_none());
}

#[test]
fn output_schema_is_stable_across_formats() {
    let logger = Logger::null();
    let summary = run_with_logger(logger);
    let r = &summary.results[0];

    // CSV columns must be exactly the declared schema.
    let mut csv = OutputModule::new(OutputFormat::Csv, Vec::new());
    csv.record(r).unwrap();
    let text = String::from_utf8(csv.finish().unwrap()).unwrap();
    let header: Vec<&str> = text.lines().next().unwrap().split(',').collect();
    let declared: Vec<&str> = SCHEMA.iter().map(|&(n, _)| n).collect();
    assert_eq!(header, declared);

    // JSONL keys must be exactly the declared schema (static types, no
    // dynamic keys — the §5 lesson).
    let mut jsonl = OutputModule::new(OutputFormat::JsonLines, Vec::new());
    jsonl.record(r).unwrap();
    let text = String::from_utf8(jsonl.finish().unwrap()).unwrap();
    let v: serde_json::Value = serde_json::from_str(text.trim()).unwrap();
    let mut keys: Vec<&str> = v.as_object().unwrap().keys().map(|s| s.as_str()).collect();
    keys.sort_unstable();
    let mut declared_sorted = declared.clone();
    declared_sorted.sort_unstable();
    assert_eq!(keys, declared_sorted);

    // Field types are single and well-defined.
    assert!(v["ts_ns"].is_u64());
    assert!(v["saddr"].is_string());
    assert!(v["sport"].is_u64());
    assert!(v["classification"].is_string());
    assert!(v["ttl"].is_u64());
    assert!(v["success"].is_boolean());
}

#[test]
fn status_stream_reports_progress_monotonically() {
    let summary = run_with_logger(Logger::null());
    let mut prev_sent = 0;
    for s in &summary.status {
        assert!(s.sent >= prev_sent, "sent must be monotone");
        prev_sent = s.sent;
        assert!(s.percent_complete <= 100.0 + 1e-9);
    }
    assert!(summary.status.last().unwrap().percent_complete > 99.0);
}
