//! Integration: scans against faulted worlds. Exercises the full loop —
//! FaultPlan schedules impairments inside the simulated Internet, the
//! scanner's retry/dedup/checksum machinery absorbs them, and the
//! counters in the summary/metadata account for every perturbation.

use std::collections::HashSet;
use std::net::Ipv4Addr;
use zmap::prelude::*;
use zmap_netsim::loss::LossModel;

/// Extracts the v4 address from a record; these scans are v4-only.
fn v4(ip: std::net::IpAddr) -> u32 {
    match ip {
        std::net::IpAddr::V4(v4) => u32::from(v4),
        std::net::IpAddr::V6(v6) => panic!("unexpected v6 record {v6}"),
    }
}

/// A lossless dense world (every host live, port 80 open, option-
/// insensitive) so fault effects can be counted exactly.
fn dense_world(seed: u64, faults: FaultPlan) -> WorldConfig {
    WorldConfig {
        seed,
        model: ServiceModel::dense(&[80]),
        loss: LossModel::NONE,
        faults,
        ..WorldConfig::default()
    }
}

fn cfg_for(prefix: Ipv4Addr, len: u8) -> ScanConfig {
    let src = Ipv4Addr::new(192, 0, 2, 1);
    let mut cfg = ScanConfig::new(src);
    cfg.allowlist_prefix(prefix, len);
    cfg.apply_default_blocklist = false;
    cfg.rate_pps = 1_000_000;
    cfg.seed = 11;
    cfg.cooldown_secs = 2;
    cfg
}

fn scan(world: WorldConfig, cfg: ScanConfig) -> ScanSummary {
    let net = SimNet::new(world);
    let src = cfg.source_ip;
    Scanner::new(cfg, net.transport(src)).unwrap().run()
}

#[test]
fn duplicated_responses_are_suppressed_by_the_window() {
    let plan = FaultPlan::builder().duplicate(0.25).build();
    let summary = scan(
        dense_world(5, plan),
        cfg_for(Ipv4Addr::new(55, 44, 0, 0), 24),
    );
    assert_eq!(summary.sent, 256);
    assert_eq!(summary.unique_successes, 256, "dups must not cost coverage");
    assert!(
        summary.duplicates_suppressed > 20,
        "fraction 0.25 of 256 responses must duplicate: {}",
        summary.duplicates_suppressed
    );
    // Every validated response is either the first sighting or a dup.
    assert_eq!(
        summary.responses_validated,
        256 + summary.duplicates_suppressed
    );
    // The output stream itself carries no duplicates.
    let mut seen = HashSet::new();
    for r in &summary.results {
        assert!(seen.insert((r.saddr, r.sport)), "{} twice", r.saddr);
    }
}

#[test]
fn corrupted_responses_never_reach_the_output() {
    // Half of all responses take a bit flip; checksum validation must
    // reject every one, so the flipped targets read as misses and the
    // output contains only genuine records.
    let plan = FaultPlan::builder().corrupt(0.5).build();
    let summary = scan(
        dense_world(6, plan),
        cfg_for(Ipv4Addr::new(55, 44, 0, 0), 24),
    );
    assert!(
        summary.responses_corrupted > 60,
        "corruption must be observed: {}",
        summary.responses_corrupted
    );
    // Exactly one response per target in this world: flips caught by a
    // checksum are counted, flips that mangle the IP header itself (dst
    // address, IHL…) fail to parse and are silently discarded — either
    // way the target reads as a miss, never as a bogus record.
    assert!(summary.unique_successes < 256, "flipped targets must be missed");
    assert!(
        summary.unique_successes + summary.responses_corrupted <= 256,
        "corrupted frames must never also validate"
    );
    // Nothing corrupt leaked: all records are real dense-world hosts.
    for r in &summary.results {
        let ip = v4(r.saddr);
        assert_eq!(ip >> 8, 0x372C00, "{} outside the scanned /24", r.saddr);
        assert_eq!(r.sport, 80);
        assert!(r.success);
    }
}

#[test]
fn blackout_ranges_show_as_misses() {
    // 55.44.1.0/24 goes dark for the whole scan; its /23 sibling stays up.
    let plan = FaultPlan::builder()
        .blackout(Ipv4Addr::new(55, 44, 1, 0), 24, 0, u64::MAX)
        .build();
    let summary = scan(
        dense_world(7, plan),
        cfg_for(Ipv4Addr::new(55, 44, 0, 0), 23),
    );
    assert_eq!(summary.sent, 512, "probes into the blackout still count as sent");
    assert_eq!(summary.unique_successes, 256, "only the lit /24 answers");
    for r in &summary.results {
        assert_eq!(
            v4(r.saddr) >> 8,
            0x372C00,
            "{} is inside the blacked-out range",
            r.saddr
        );
    }
}

#[test]
fn retries_recover_transient_send_failures() {
    // 30% of send attempts fail with EAGAIN. A retry budget of 8 makes
    // the chance of losing any probe negligible (0.3^9 per target).
    let plan = FaultPlan::builder().send_failures(0.3).build();
    let mut cfg = cfg_for(Ipv4Addr::new(55, 44, 0, 0), 24);
    cfg.max_retries = 8;
    let summary = scan(dense_world(8, plan.clone()), cfg);
    assert_eq!(summary.sent, 256, "every probe eventually leaves the NIC");
    assert_eq!(summary.sent, summary.targets_total);
    assert!(summary.send_retries > 40, "retries: {}", summary.send_retries);
    assert_eq!(summary.sendto_failures, 0);
    assert_eq!(summary.unique_successes, 256);

    // With no retry budget the same plan visibly drops probes.
    let mut cfg = cfg_for(Ipv4Addr::new(55, 44, 0, 0), 24);
    cfg.max_retries = 0;
    let summary = scan(dense_world(8, plan), cfg);
    assert!(summary.sendto_failures > 40, "{}", summary.sendto_failures);
    assert_eq!(summary.sent + summary.sendto_failures, 256);
    assert_eq!(summary.unique_successes, summary.sent);
}

#[test]
fn icmp_storm_converts_successes_into_failures() {
    // A storm window covering the whole scan: consumed probes come back
    // as host-unreachables instead of SYN-ACKs.
    let plan = FaultPlan::builder().icmp_storm(0, u64::MAX, 0.4).build();
    let mut cfg = cfg_for(Ipv4Addr::new(55, 44, 0, 0), 24);
    cfg.report_failures = true;
    let summary = scan(dense_world(9, plan), cfg);
    assert!(summary.unique_failures > 50, "{}", summary.unique_failures);
    assert_eq!(
        summary.unique_successes + summary.unique_failures,
        256,
        "every probe is answered: SYN-ACK or storm ICMP"
    );
}

#[test]
fn acceptance_lossy_network_scenario() {
    // The issue's acceptance bar: 5% burst loss + 2% duplication +
    // 1-in-10^4 corruption. The scan completes, the output carries zero
    // corrupted records, dedup visibly works, the fault counters surface
    // in both the status stream and the metadata, and the whole thing
    // replays byte-identically under the same seed.
    let plan = FaultPlan::builder()
        .salt(17)
        .burst_loss(0, u64::MAX, 0.05)
        .duplicate(0.02)
        .corrupt(0.0001)
        .send_failures(0.05)
        .build();
    let run = || {
        let mut cfg = cfg_for(Ipv4Addr::new(55, 44, 0, 0), 20);
        cfg.max_retries = 6;
        scan(dense_world(10, plan.clone()), cfg)
    };
    let a = run();

    assert_eq!(a.sent, 4096, "retries absorb every transient send failure");
    assert!(a.send_retries > 0);
    assert_eq!(a.sendto_failures, 0);
    assert!(a.duplicates_suppressed > 0, "2% duplication must show up");
    // Burst loss hits the probe and the response independently, so the
    // effective miss rate is ~1 - 0.95^2 ≈ 9.75%.
    assert!(
        a.unique_successes > 3400 && a.unique_successes < 3950,
        "burst loss leaves misses: {}",
        a.unique_successes
    );
    // Zero corrupted records: every output row is a unique genuine host.
    let mut seen = HashSet::new();
    for r in &a.results {
        assert!(r.success);
        assert!(seen.insert((r.saddr, r.sport)));
        assert_eq!(v4(r.saddr) >> 12, 0x372C0, "{}", r.saddr);
    }

    // Counters surface in the status stream…
    let last = a.status.last().expect("scan spans whole seconds");
    assert_eq!(last.send_retries, a.send_retries);
    assert_eq!(last.duplicates_suppressed, a.duplicates_suppressed);
    // …and in the metadata document.
    let meta = a.metadata.to_json();
    assert!(meta.contains("\"send_retries\""), "{meta}");
    assert!(meta.contains("\"sendto_failures\""), "{meta}");
    assert!(meta.contains("\"responses_corrupted\""), "{meta}");

    // Same seed, same plan: byte-identical replay.
    let b = run();
    assert_eq!(a.sent, b.sent);
    assert_eq!(a.send_retries, b.send_retries);
    assert_eq!(a.duplicates_suppressed, b.duplicates_suppressed);
    assert_eq!(a.responses_corrupted, b.responses_corrupted);
    let ra: Vec<_> = a.results.iter().map(|r| (r.saddr, r.sport, r.ts_ns)).collect();
    let rb: Vec<_> = b.results.iter().map(|r| (r.saddr, r.sport, r.ts_ns)).collect();
    assert_eq!(ra, rb);
}
