//! Property-based tests (proptest) over the core data structures: the
//! invariants the whole methodology rests on.

use proptest::prelude::*;
use std::collections::HashSet;
use std::net::Ipv4Addr;
use zmap::dedup::SlidingWindow;
use zmap::netsim::loss::LossModel;
use zmap::prelude::*;
use zmap::masscan::Blackrock;
use zmap::targets::{Constraint, Cycle, CyclicGroup, ShardAlgorithm, ShardIter, ShardSpec};
use zmap::wire::checksum;
use zmap::wire::cookie::ValidationKey;
use zmap::wire::options;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The cyclic-group walk is a bijection of [1, p) for every seed.
    #[test]
    fn cycle_walk_is_bijective(seed in any::<u64>()) {
        let group = CyclicGroup::new(257).unwrap();
        let cycle = Cycle::new(group, seed);
        let mut seen = HashSet::new();
        let mut x = cycle.element_at_position(0);
        for _ in 0..256 {
            prop_assert!((1..257).contains(&x));
            prop_assert!(seen.insert(x));
            x = cycle.step(x);
        }
        prop_assert_eq!(x, cycle.element_at_position(0));
    }

    /// Shards partition the group exactly for any (N, T) and algorithm.
    #[test]
    fn shards_partition_group(
        num_shards in 1u32..12,
        num_subshards in 1u32..5,
        seed in any::<u64>(),
        pizza in any::<bool>(),
    ) {
        let alg = if pizza { ShardAlgorithm::Pizza } else { ShardAlgorithm::Interleaved };
        let group = CyclicGroup::new(65537).unwrap();
        let cycle = Cycle::new(group, seed);
        let mut seen = HashSet::new();
        let mut total = 0u64;
        for shard in 0..num_shards {
            for subshard in 0..num_subshards {
                let spec = ShardSpec { shard, num_shards, subshard, num_subshards };
                for e in ShardIter::new(&cycle, spec, alg).unwrap() {
                    prop_assert!(seen.insert(e), "duplicate element {}", e);
                    total += 1;
                }
            }
        }
        prop_assert_eq!(total, 65536);
    }

    /// Constraint index→address lookup is a strictly increasing bijection
    /// onto the allowed set.
    #[test]
    fn constraint_lookup_bijective(
        prefixes in prop::collection::vec((any::<u32>(), 8u8..=28, any::<bool>()), 1..8),
    ) {
        let mut c = Constraint::new(false);
        for (addr, len, allow) in prefixes {
            c.set_prefix(addr, len, allow);
        }
        c.finalize();
        let n = c.allowed_count();
        // Sample up to 2000 indices (sets can be huge).
        let step = (n / 2000).max(1);
        let mut prev: Option<u32> = None;
        let mut i = 0u64;
        while i < n {
            let a = c.lookup(i).expect("index in range");
            prop_assert!(c.is_allowed(a));
            if step == 1 {
                if let Some(p) = prev {
                    prop_assert!(a > p);
                }
                prev = Some(a);
            }
            i += step;
        }
        prop_assert!(c.lookup(n).is_none());
    }

    /// Blackrock (fixed) is a permutation for arbitrary ranges and seeds.
    #[test]
    fn blackrock_is_permutation(range in 1u64..30_000, seed in any::<u64>()) {
        let br = Blackrock::new(range, seed);
        let mut seen = HashSet::new();
        for i in 0..range {
            let y = br.shuffle(i);
            prop_assert!(y < range);
            prop_assert!(seen.insert(y));
        }
    }

    /// Internet checksum: any single-bit corruption is detected.
    #[test]
    fn checksum_detects_bit_flips(
        mut data in prop::collection::vec(any::<u8>(), 2..64),
        bit in any::<u16>(),
    ) {
        // Even length keeps the flip away from implicit padding concerns.
        if data.len() % 2 == 1 { data.push(0); }
        let c = checksum::checksum(&data);
        let pos = usize::from(bit) % (data.len() * 8);
        data[pos / 8] ^= 1 << (pos % 8);
        let c2 = checksum::checksum(&data);
        prop_assert_ne!(c, c2, "flip at {} undetected", pos);
    }

    /// TCP option decode never panics and roundtrips valid encodings.
    #[test]
    fn options_decode_is_total(data in prop::collection::vec(any::<u8>(), 0..40)) {
        let _ = options::decode(&data); // must not panic
    }

    /// Validation cookies only validate the exact probe addressing.
    #[test]
    fn cookie_is_tuple_exact(
        seed in any::<u64>(),
        src in any::<u32>(),
        dst in any::<u32>(),
        dport in any::<u16>(),
        wrong_ack in any::<u32>(),
    ) {
        let key = ValidationKey::from_seed(seed);
        let seq = key.tcp_seq(src, dst, dport);
        prop_assert!(key.tcp_validate(src, dst, dport, seq.wrapping_add(1)));
        if wrong_ack != seq.wrapping_add(1) {
            prop_assert!(!key.tcp_validate(src, dst, dport, wrong_ack));
        }
        prop_assert!(!key.tcp_validate(src, dst.wrapping_add(1), dport, seq.wrapping_add(1)));
    }

    /// Sliding window: never suppresses a first sighting; always
    /// suppresses a repeat within window distance.
    #[test]
    fn window_dedup_contract(
        cap in 1usize..500,
        stream in prop::collection::vec(0u64..200, 1..800),
    ) {
        let mut w = SlidingWindow::new(cap);
        let mut last_seen_at: std::collections::HashMap<u64, (usize, usize)> =
            std::collections::HashMap::new(); // key -> (stream idx, distinct-insert count)
        let mut inserts = 0usize;
        for (i, &k) in stream.iter().enumerate() {
            let fresh = w.check_and_insert(k);
            if let Some(&(_, at_inserts)) = last_seen_at.get(&k) {
                let distance = inserts - at_inserts;
                if distance < cap {
                    prop_assert!(!fresh, "repeat of {} within window suppressed", k);
                }
            } else {
                prop_assert!(fresh, "first sighting of {} must pass", k);
            }
            if fresh {
                inserts += 1;
                last_seen_at.insert(k, (i, inserts));
            }
        }
    }
}

/// Runs a small scan (a /26, 64 targets) against a faulted dense world.
fn faulted_scan(world_seed: u64, scan_seed: u64, plan: FaultPlan, max_retries: u32) -> ScanSummary {
    let net = SimNet::new(WorldConfig {
        seed: world_seed,
        model: ServiceModel::dense(&[80]),
        loss: LossModel::NONE,
        faults: plan,
        ..WorldConfig::default()
    });
    let src = Ipv4Addr::new(192, 0, 2, 1);
    let mut cfg = ScanConfig::new(src);
    cfg.allowlist_prefix(Ipv4Addr::new(55, 60, 0, 0), 26);
    cfg.apply_default_blocklist = false;
    cfg.rate_pps = 1_000_000;
    cfg.seed = scan_seed;
    cfg.cooldown_secs = 2;
    cfg.max_retries = max_retries;
    Scanner::new(cfg, net.transport(src)).unwrap().run()
}

fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (
        any::<u64>(),
        0.0..0.3f64,
        0.0..0.3f64,
        0.0..0.3f64,
        0.0..0.3f64,
    )
        .prop_map(|(salt, send_f, dup, reorder, corrupt)| {
            FaultPlan::builder()
                .salt(salt)
                .send_failures(send_f)
                .duplicate(dup)
                .reorder(reorder, 5_000_000)
                .corrupt(corrupt)
                .build()
        })
}

proptest! {
    // Each case runs whole scans; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A seeded fault plan perturbs the world deterministically: two
    /// runs with identical seeds produce identical summaries, down to
    /// the per-result timestamps and the per-second status stream.
    #[test]
    fn faulted_scans_replay_identically(
        world_seed in any::<u64>(),
        scan_seed in any::<u64>(),
        plan in arb_plan(),
    ) {
        let a = faulted_scan(world_seed, scan_seed, plan.clone(), 4);
        let b = faulted_scan(world_seed, scan_seed, plan, 4);
        prop_assert_eq!(a.sent, b.sent);
        prop_assert_eq!(a.send_retries, b.send_retries);
        prop_assert_eq!(a.sendto_failures, b.sendto_failures);
        prop_assert_eq!(a.responses_validated, b.responses_validated);
        prop_assert_eq!(a.duplicates_suppressed, b.duplicates_suppressed);
        prop_assert_eq!(a.responses_corrupted, b.responses_corrupted);
        prop_assert_eq!(a.unique_successes, b.unique_successes);
        let ra: Vec<_> = a.results.iter().map(|r| (r.saddr, r.sport, r.ts_ns)).collect();
        let rb: Vec<_> = b.results.iter().map(|r| (r.saddr, r.sport, r.ts_ns)).collect();
        prop_assert_eq!(ra, rb);
        prop_assert_eq!(a.status, b.status);
    }

    /// With a bounded failure rate and a generous retry budget, no probe
    /// is ever abandoned: every target leaves the NIC.
    #[test]
    fn retries_cover_all_targets(
        world_seed in any::<u64>(),
        send_f in 0.0..0.3f64,
        salt in any::<u64>(),
    ) {
        let plan = FaultPlan::builder().salt(salt).send_failures(send_f).build();
        // P(single probe exhausted) <= 0.3^11 — negligible over 64 targets.
        let s = faulted_scan(world_seed, 7, plan, 10);
        prop_assert_eq!(s.sendto_failures, 0, "budget of 10 must absorb f <= 0.3");
        prop_assert_eq!(s.sent, s.targets_total);
    }

    /// Response accounting never leaks: every validated response is a
    /// first sighting (success or failure) or a suppressed duplicate.
    #[test]
    fn validated_responses_are_fully_accounted(
        world_seed in any::<u64>(),
        plan in arb_plan(),
    ) {
        let s = faulted_scan(world_seed, 13, plan, 4);
        prop_assert!(
            s.duplicates_suppressed + s.unique_successes + s.unique_failures
                <= s.responses_validated
        );
    }
}
