//! Deduplication boundary tests: the exact eviction edge of the
//! sliding window, the page edges of the paged bitmap, and the two
//! dedup paths driven end-to-end through the engine against a
//! blowback-heavy world. The interesting bugs in FIFO-with-set
//! structures live at `len == capacity` exactly — off-by-one there
//! either leaks a duplicate into results or suppresses a legitimate
//! late response forever.

use std::collections::HashSet;
use std::net::Ipv4Addr;
use zmap::dedup::{PagedBitmap, SlidingWindow};
use zmap::netsim::loss::LossModel;
use zmap::prelude::*;

#[test]
fn window_duplicate_at_high_water_edge_is_suppressed() {
    let cap = 1000usize;
    let mut w = SlidingWindow::new(cap);
    for k in 0..cap as u64 {
        assert!(w.check_and_insert(k), "key {k} is fresh");
    }
    // Exactly at high water: the window is full and key 0 is the oldest
    // entry, one eviction away from forgotten — but still remembered.
    assert_eq!(w.len(), cap);
    assert!(!w.check_and_insert(0), "oldest key still in window");
    assert!(!w.check_and_insert(cap as u64 - 1), "newest key in window");
    assert_eq!(w.suppressed(), 2);
    assert_eq!(w.len(), cap, "suppression must not grow the ring");
}

#[test]
fn window_duplicate_one_past_the_edge_passes() {
    let cap = 1000usize;
    let mut w = SlidingWindow::new(cap);
    for k in 0..cap as u64 {
        w.check_and_insert(k);
    }
    // One fresh key past high water evicts exactly key 0, nothing else.
    assert!(w.check_and_insert(cap as u64));
    assert_eq!(w.len(), cap);
    assert!(
        !w.check_and_insert(1),
        "key 1 was not evicted by the single overflow"
    );
    assert!(
        w.check_and_insert(0),
        "evicted key must pass as fresh (the Figure 5 imprecision)"
    );
    // Re-admitting 0 made it the newest entry; it is remembered again
    // (and the eviction it caused fell on key 1, the oldest — the
    // earlier suppressed observation of 1 did not refresh its slot).
    assert!(!w.check_and_insert(0));
    assert!(w.check_and_insert(1), "0's re-admission evicted key 1");
}

#[test]
fn window_capacity_one_remembers_only_the_last_key() {
    let mut w = SlidingWindow::new(1);
    assert!(w.check_and_insert(7));
    assert!(!w.check_and_insert(7), "immediate repeat suppressed");
    assert!(w.check_and_insert(8), "new key evicts the only slot");
    assert!(w.check_and_insert(7), "evicted key passes again");
    assert_eq!(w.len(), 1);
}

#[test]
fn paged_bitmap_page_edges_are_exact() {
    let mut b = PagedBitmap::new();
    // 2^16 bits per page: 0xFFFF is the last bit of page 0, 0x10000 the
    // first bit of page 1. An off-by-one in the page split makes these
    // two keys alias.
    assert!(b.insert(0xFFFF));
    assert!(!b.contains(0x10000), "page edge must not alias");
    assert!(b.insert(0x10000));
    assert!(!b.insert(0xFFFF), "exact: repeat at page end suppressed");
    assert!(!b.insert(0x10000), "exact: repeat at page start suppressed");
    assert_eq!(b.allocated_pages(), 2, "one page per side of the edge");
    // The far edge of the key space.
    assert!(b.insert(u32::MAX));
    assert!(!b.insert(u32::MAX));
    assert!(b.insert(u32::MAX - 1));
    assert_eq!(b.len(), 4);
}

/// A /24 with heavy blowback: ~every responder re-sends its answer,
/// so the dedup structure, not the population, decides what reaches
/// the results stream.
fn blowback_scan(dedup: DedupMethod) -> ScanSummary {
    let mut model = ServiceModel {
        live_fraction: 0.9,
        ..ServiceModel::default()
    };
    model.blowback_fraction = 1.0;
    model.blowback_max = 8;
    let net = SimNet::new(WorldConfig {
        seed: 11,
        model,
        loss: LossModel::NONE,
        ..WorldConfig::default()
    });
    let src = Ipv4Addr::new(192, 0, 2, 9);
    let mut cfg = ScanConfig::new(src);
    cfg.allowlist_prefix(Ipv4Addr::new(60, 21, 5, 0), 24);
    cfg.apply_default_blocklist = false;
    cfg.seed = 5;
    cfg.rate_pps = 100_000;
    cfg.cooldown_secs = 30; // long enough for the whole duplicate tail
    cfg.dedup = dedup;
    Scanner::new(cfg, net.transport(src)).expect("valid").run()
}

fn dup_records(summary: &ScanSummary) -> u64 {
    let mut seen = HashSet::new();
    summary
        .results
        .iter()
        .filter(|r| !seen.insert((r.saddr, r.sport)))
        .count() as u64
}

#[test]
fn engine_full_bitmap_suppresses_every_duplicate() {
    let s = blowback_scan(DedupMethod::FullBitmap);
    assert!(s.duplicates_suppressed > 0, "blowback world produced no dups");
    assert_eq!(dup_records(&s), 0, "exact filter leaked a duplicate");
    assert_eq!(s.unique_successes, s.results.len() as u64);
}

#[test]
fn engine_window_trades_exactness_for_memory() {
    // A window big enough for the whole /24 behaves exactly...
    let wide = blowback_scan(DedupMethod::Window(1_000_000));
    assert!(wide.duplicates_suppressed > 0);
    assert_eq!(dup_records(&wide), 0, "wide window leaked a duplicate");

    // ...while a window smaller than the duplicate spread lets repeats
    // back through once their key is evicted — the controlled
    // imprecision the paper's Figure 5 quantifies.
    let narrow = blowback_scan(DedupMethod::Window(2));
    assert!(
        dup_records(&narrow) > 0,
        "2-entry window cannot hold a /24's duplicate tail"
    );
    // Both engines saw the same world: total validated responses match.
    assert_eq!(wide.responses_validated, narrow.responses_validated);
}
