#![forbid(unsafe_code)]
//! # zmap-rs — *Ten Years of ZMap*, reproduced in Rust
//!
//! Umbrella crate re-exporting the whole workspace: the scanner library
//! ([`core`]), its substrates (target generation, wire formats,
//! deduplication), the simulated-Internet evaluation environment
//! ([`netsim`], [`telescope`]), and the Masscan baseline ([`masscan`]).
//!
//! Start with [`core::Scanner`] and the `examples/` directory
//! (`cargo run --example quickstart`). DESIGN.md maps every paper
//! figure/table to the module and bench that regenerates it.

/// Number-theoretic primitives (cyclic groups, primality, factoring).
pub use zmap_math as math;

/// Target generation: cyclic-group permutation, sharding, constraints.
pub use zmap_targets as targets;

/// Packet construction/parsing, TCP option layouts, validation cookies.
pub use zmap_wire as wire;

/// Response deduplication: paged bitmap, Judy-style set, sliding window.
pub use zmap_dedup as dedup;

/// Lock-free counters, log2 latency histograms, bounded event traces.
pub use zmap_metrics as metrics;

/// The deterministic simulated IPv4 Internet.
pub use zmap_netsim as netsim;

/// Network-telescope attribution pipeline (Figures 1–4, 8).
pub use zmap_telescope as telescope;

/// The scanner engine and its four output streams.
pub use zmap_core as core;

/// Masscan-style baseline scanner (Blackrock randomization).
pub use zmap_masscan as masscan;

/// Most-used types, one import away.
pub mod prelude {
    pub use zmap_core::{
        CheckpointPolicy, CheckpointState, Classification, DedupMethod, JournalError,
        OutputFormat, ProbeKind, ResumeError, RunOptions, ScanConfig, ScanResult, ScanSummary,
        Scanner, ShutdownToken, SimNet, Transport,
    };
    pub use zmap_core::metrics::{CounterId, HistId, ScanMetrics};
    pub use zmap_core::{
        JobEvent, JobOutcome, JobReport, JobSpec, Supervisor, SupervisorConfig, SupervisorError,
        SupervisorReport,
    };
    pub use zmap_metrics::{HistogramSnapshot, Log2Histogram, MetricsSnapshot};
    pub use zmap_core::Ipv6Config;
    pub use zmap_netsim::{
        FaultPlan, SendError, ServiceModel, V6Population, WorkerFault, WorkerFaultKind,
        WorkerFaultPlan, World, WorldConfig,
    };
    pub use zmap_targets::{Constraint, ShardAlgorithm, Target, TargetGenerator};
    pub use zmap_wire::{IpIdMode, OptionLayout};
}
