//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` for the shapes this workspace uses —
//! non-generic structs with named fields and enums — without `syn`/`quote`:
//! the input item is parsed from its token string. Struct fields serialize
//! through `Serializer::serialize_struct`; enums serialize as their variant
//! name (payloads are configuration detail echoed elsewhere via `Debug`).

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let src = input.to_string();
    let item = parse_item(&src)
        .unwrap_or_else(|e| panic!("#[derive(Serialize)] shim could not parse item: {e}\n{src}"));
    let code = match item {
        Item::Struct { name, fields } => {
            let mut body = format!(
                "let mut st = ::serde::Serializer::serialize_struct(serializer, \"{name}\", {})?;\n",
                fields.len()
            );
            for f in &fields {
                body.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut st, \"{f}\", &self.{f})?;\n"
                ));
            }
            body.push_str("::serde::ser::SerializeStruct::end(st)\n");
            wrap_impl(&name, &body)
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in &variants {
                let pat = match v.kind {
                    VariantKind::Unit => format!("{name}::{}", v.name),
                    VariantKind::Tuple => format!("{name}::{}(..)", v.name),
                    VariantKind::Struct => format!("{name}::{} {{ .. }}", v.name),
                };
                arms.push_str(&format!("{pat} => \"{}\",\n", v.name));
            }
            let body = format!(
                "let variant = match self {{\n{arms}}};\n\
                 ::serde::Serializer::serialize_str(serializer, variant)\n"
            );
            wrap_impl(&name, &body)
        }
    };
    code.parse().expect("derive shim generated invalid Rust")
}

fn wrap_impl(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize<S: ::serde::Serializer>(&self, serializer: S)\n\
                 -> ::core::result::Result<S::Ok, S::Error> {{\n\
                 {body}\
             }}\n\
         }}\n"
    )
}

enum VariantKind {
    Unit,
    Tuple,
    Struct,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<Variant> },
}

/// Strips `#[...]` attribute groups and `//`-style comment lines (doc
/// comments can surface either way in the token stream's string form).
fn strip_attrs(src: &str) -> String {
    let chars: Vec<char> = src.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '/' && chars.get(i + 1) == Some(&'/') {
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if chars[i] == '#' {
            let mut j = i + 1;
            while j < chars.len() && chars[j].is_whitespace() {
                j += 1;
            }
            if j < chars.len() && chars[j] == '[' {
                // Skip to the matching close bracket (strings inside doc
                // attributes may contain brackets; track them).
                let mut depth = 0i32;
                let mut in_str = false;
                let mut escaped = false;
                while j < chars.len() {
                    let c = chars[j];
                    if in_str {
                        if escaped {
                            escaped = false;
                        } else if c == '\\' {
                            escaped = true;
                        } else if c == '"' {
                            in_str = false;
                        }
                    } else if c == '"' {
                        in_str = true;
                    } else if c == '[' {
                        depth += 1;
                    } else if c == ']' {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                i = j + 1;
                continue;
            }
        }
        out.push(chars[i]);
        i += 1;
    }
    out
}

/// Splits `body` on commas at the top nesting level.
fn split_top_level(body: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    for c in body.chars() {
        match c {
            '(' | '[' | '{' | '<' => depth += 1,
            ')' | ']' | '}' | '>' => depth -= 1,
            ',' if depth == 0 => {
                parts.push(cur.trim().to_string());
                cur.clear();
                continue;
            }
            _ => {}
        }
        cur.push(c);
    }
    if !cur.trim().is_empty() {
        parts.push(cur.trim().to_string());
    }
    parts
}

fn parse_item(src: &str) -> Result<Item, String> {
    let clean = strip_attrs(src);
    let tokens: Vec<&str> = clean.split_whitespace().collect();
    let mut idx = 0;
    while idx < tokens.len() && (tokens[idx] == "pub" || tokens[idx].starts_with("pub(")) {
        idx += 1;
    }
    let kind = *tokens.get(idx).ok_or("missing struct/enum keyword")?;
    let name = tokens
        .get(idx + 1)
        .ok_or("missing item name")?
        .trim_end_matches(|c: char| !c.is_alphanumeric() && c != '_')
        .to_string();
    if name.is_empty() {
        return Err("empty item name".into());
    }
    // Body = text between the first top-level '{' and its matching '}'.
    let open = clean.find('{').ok_or("derive shim supports brace-bodied items only")?;
    let mut depth = 0i32;
    let mut close = None;
    for (off, c) in clean[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    close = Some(open + off);
                    break;
                }
            }
            _ => {}
        }
    }
    let close = close.ok_or("unbalanced braces")?;
    let body = &clean[open + 1..close];

    match kind {
        "struct" => {
            let mut fields = Vec::new();
            for part in split_top_level(body) {
                let part = part.trim_start_matches("pub ").trim();
                let fname = part
                    .split(':')
                    .next()
                    .ok_or("field without type")?
                    .trim()
                    .trim_start_matches("pub")
                    .trim();
                if fname.is_empty() {
                    return Err(format!("unparseable field: {part}"));
                }
                fields.push(fname.to_string());
            }
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let mut variants = Vec::new();
            for part in split_top_level(body) {
                let part = part.trim();
                let vname: String = part
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if vname.is_empty() {
                    return Err(format!("unparseable variant: {part}"));
                }
                let rest = part[vname.len()..].trim_start();
                let kind = if rest.starts_with('(') {
                    VariantKind::Tuple
                } else if rest.starts_with('{') {
                    VariantKind::Struct
                } else {
                    VariantKind::Unit
                };
                variants.push(Variant { name: vname, kind });
            }
            Ok(Item::Enum { name, variants })
        }
        other => Err(format!("unsupported item kind {other}")),
    }
}
