//! Offline stand-in for `criterion`.
//!
//! Bench files keep their upstream source (`criterion_group!`,
//! `criterion_main!`, `benchmark_group`, `bench_function`, `iter`,
//! `black_box`, `Throughput`); this shim runs each benchmark for a short
//! wall-clock window and prints mean time per iteration (plus element
//! throughput when declared). No statistics, plots, or baselines.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Declared per-iteration workload, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup {
            group: name.to_string(),
            throughput: None,
            sample_size: self.sample_size,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        run_one(id.as_ref(), None, self.sample_size, f);
        self
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup {
    group: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.group, id.as_ref());
        run_one(&label, self.throughput, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up pass, then timed samples.
        black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, tput: Option<Throughput>, samples: usize, mut f: F) {
    let mut b = Bencher { samples, total: Duration::ZERO, iters: 0 };
    f(&mut b);
    if b.iters == 0 {
        println!("  {label}: no iterations recorded");
        return;
    }
    let per_iter = b.total / u32::try_from(b.iters).unwrap_or(u32::MAX);
    let mut line = format!("  {label}: {per_iter:?}/iter over {} iters", b.iters);
    if let Some(t) = tput {
        let secs = per_iter.as_secs_f64().max(1e-12);
        match t {
            Throughput::Elements(n) => {
                line.push_str(&format!(" ({:.3} Melem/s)", n as f64 / secs / 1e6));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!(" ({:.3} MiB/s)", n as f64 / secs / (1024.0 * 1024.0)));
            }
        }
    }
    println!("{line}");
}

/// Groups bench functions under one entry point, like upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        let mut ran = 0u32;
        g.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        g.finish();
        assert!(ran >= 3);
    }
}
