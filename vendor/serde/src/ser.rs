//! The serialization data model: a faithful subset of `serde::ser`.

use std::fmt::Display;

/// Error construction hook, mirroring `serde::ser::Error`.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from a message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data structure that can be serialized into any serde data format.
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A data format that can serialize the serde data model.
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Compound builder for sequences.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Compound builder for structs.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Compound builder for maps.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;

    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;

    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error> {
        self.serialize_i64(i64::from(v))
    }
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error> {
        self.serialize_i64(i64::from(v))
    }
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error> {
        self.serialize_i64(i64::from(v))
    }
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error> {
        self.serialize_u64(u64::from(v))
    }
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error> {
        self.serialize_u64(u64::from(v))
    }
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error> {
        self.serialize_u64(u64::from(v))
    }
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error> {
        self.serialize_f64(f64::from(v))
    }
}

/// Builder for sequence serialization.
pub trait SerializeSeq {
    type Ok;
    type Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T)
        -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Builder for struct serialization.
pub trait SerializeStruct {
    type Ok;
    type Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        name: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Builder for map serialization.
pub trait SerializeMap {
    type Ok;
    type Error;
    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

// ---- Serialize impls for std types the workspace serializes ----

macro_rules! impl_serialize_via {
    ($($t:ty => $method:ident),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self)
            }
        }
    )*};
}

impl_serialize_via! {
    bool => serialize_bool,
    i8 => serialize_i8,
    i16 => serialize_i16,
    i32 => serialize_i32,
    i64 => serialize_i64,
    u8 => serialize_u8,
    u16 => serialize_u16,
    u32 => serialize_u32,
    u64 => serialize_u64,
    f32 => serialize_f32,
    f64 => serialize_f64,
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl Serialize for std::net::Ipv4Addr {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

impl Serialize for std::net::Ipv6Addr {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

impl Serialize for std::net::IpAddr {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}
