//! Offline stand-in for `serde` (serialization half).
//!
//! Implements the serde data-model traits this workspace actually touches:
//! [`Serialize`], [`Serializer`], the `SerializeSeq`/`SerializeStruct`
//! compound builders, and a `#[derive(Serialize)]` macro (re-exported from
//! the vendored `serde_derive`). The trait signatures mirror upstream so
//! user code — manual `impl Serialize` blocks included — compiles
//! unchanged against either crate.

pub use serde_derive::Serialize;

pub mod ser;

pub use ser::{Serialize, Serializer};
