//! Offline stand-in for `proptest`.
//!
//! Keeps the `proptest!` test-definition syntax and the strategy
//! combinators this workspace uses (`any::<T>()`, integer ranges, tuples,
//! `prop::collection::vec`) while running each property as a plain
//! deterministic loop of random cases. Failing inputs are reported via the
//! panic message; there is no shrinking. Case streams are seeded from the
//! test name, so runs are reproducible.

use rand::{Rng, SeedableRng, StdRng};

/// Runner configuration. Only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A source of random values of `Self::Value`.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps sampled values through `f` (the upstream combinator; the
    /// stub samples eagerly, so no shrinking is preserved).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// `any::<T>()` — the full uniform domain of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: rand::Standard>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Floats support half-open ranges only (an inclusive float range is not
// meaningfully samplable, and upstream rejects most of them too).
impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Strategy combinators namespace, mirroring `proptest::prop`.
pub mod collection {
    use super::Strategy;
    use rand::{Rng, StdRng};

    /// A vector whose length is drawn from `len` and whose elements are
    /// drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Fixed-length array strategies, mirroring `proptest::array`.
pub mod array {
    use super::Strategy;
    use rand::StdRng;

    /// An `[S::Value; N]` with each element drawn from `element`.
    pub struct UniformArrayStrategy<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArrayStrategy<S, N> {
        type Value = [S::Value; N];
        fn sample(&self, rng: &mut StdRng) -> [S::Value; N] {
            core::array::from_fn(|_| self.element.sample(rng))
        }
    }

    pub fn uniform4<S: Strategy>(element: S) -> UniformArrayStrategy<S, 4> {
        UniformArrayStrategy { element }
    }

    pub fn uniform8<S: Strategy>(element: S) -> UniformArrayStrategy<S, 8> {
        UniformArrayStrategy { element }
    }
}

/// Everything test files import.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};

    /// Mirror of the `proptest::prop` module path used by call sites
    /// (`prop::collection::vec`, `prop::array::uniform8`).
    pub mod prop {
        pub use crate::array;
        pub use crate::collection;
    }
}

/// Builds a deterministic per-test RNG: FNV-1a over the test name.
pub fn rng_for(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h)
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// The property-test definition macro. Each `fn name(pat in strategy, ...)`
/// becomes a `#[test]` that samples its strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat_param in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $(
                        let $arg = $crate::Strategy::sample(&($strat), &mut rng);
                    )*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..10, y in 1u8..=4, flag in any::<bool>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
            let _ = flag;
        }

        #[test]
        fn vec_lengths_in_range(v in prop::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn tuples_compose(t in (any::<u32>(), 0u16..100, any::<bool>())) {
            let (_a, b, _c) = t;
            prop_assert!(b < 100);
        }
    }
}
