//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The workspace builds in environments without a crates.io mirror, so the
//! external `rand` dependency is replaced by this vendored shim. It keeps
//! the call sites source-compatible (`StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen`, `Rng::gen_range`) and is deterministic for a given seed,
//! which is all the scanner and its tests require. The generator is
//! xoshiro256** seeded through SplitMix64 — not the ChaCha12 stream real
//! `rand` uses, so absolute values differ from upstream, but every test in
//! this repository asserts distributional or invariant properties, not
//! specific stream values.

/// Core randomness source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types samplable uniformly from an RNG (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges samplable uniformly (argument type of [`Rng::gen_range`]).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(draw) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                let draw = (rng.next_u64() as u128) % span;
                (lo as u128).wrapping_add(draw) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// User-facing convenience methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// A uniform value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256** (Blackman & Vigna), seeded
    /// via SplitMix64 exactly as the algorithm's authors recommend.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias used by some call sites for a cheap generator.
    pub type SmallRng = StdRng;
}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(5u64..17);
            assert!((5..17).contains(&v));
            let w = rng.gen_range(3u8..=9);
            assert!((3..=9).contains(&w));
        }
    }

    #[test]
    fn gen_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ones = 0u32;
        for _ in 0..10_000 {
            ones += u32::from(rng.gen::<bool>());
        }
        assert!((4000..6000).contains(&ones), "{ones}");
    }
}
