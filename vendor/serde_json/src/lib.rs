//! Offline stand-in for `serde_json`.
//!
//! Provides the subset this workspace uses: [`Value`] with indexing and
//! `as_*` accessors, [`from_str`] (a strict recursive-descent parser),
//! [`to_string`] (drives any [`serde::Serialize`] type into compact JSON,
//! preserving struct field order), and the [`json!`] macro.

use std::collections::BTreeMap;
use std::fmt;

pub mod value;
pub use value::{Map, Number, Value};

mod parse;
mod write;

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl Error {
    pub(crate) fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

/// Parses a JSON document into a [`Value`].
pub fn from_str(s: &str) -> Result<Value, Error> {
    parse::parse(s)
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    write::to_string(value)
}

/// Builds a [`Value`] from a JSON-like literal.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $( $elem:tt ),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $( $key:tt : $val:tt ),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert(String::from($key), $crate::json!($val)); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

/// Used by `Value::Object`; alias keeps call sites (`as_object().keys()`)
/// source-compatible with the real crate's `Map`.
pub type ObjectMap = BTreeMap<String, Value>;
