//! Compact JSON writer: a `serde::Serializer` that appends directly to a
//! `String`, preserving struct field order.

use crate::Error;
use serde::ser::{SerializeMap, SerializeSeq, SerializeStruct};
use serde::{Serialize, Serializer};

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize(JsonWriter { out: &mut out })?;
    Ok(out)
}

struct JsonWriter<'a> {
    out: &'a mut String,
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, v: f64) -> Result<(), Error> {
    if !v.is_finite() {
        return Err(Error::msg("JSON cannot represent NaN or infinity"));
    }
    // Keep integral floats distinguishable from ints, like the real crate.
    if v == v.trunc() && v.abs() < 1e15 {
        out.push_str(&format!("{v:.1}"));
    } else {
        out.push_str(&format!("{v}"));
    }
    Ok(())
}

impl<'a> Serializer for JsonWriter<'a> {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = SeqWriter<'a>;
    type SerializeStruct = StructWriter<'a>;
    type SerializeMap = MapWriter<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), Error> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    fn serialize_i64(self, v: i64) -> Result<(), Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_u64(self, v: u64) -> Result<(), Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<(), Error> {
        write_f64(self.out, v)
    }

    fn serialize_str(self, v: &str) -> Result<(), Error> {
        write_escaped(self.out, v);
        Ok(())
    }

    fn serialize_unit(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_none(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), Error> {
        value.serialize(self)
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<SeqWriter<'a>, Error> {
        self.out.push('[');
        Ok(SeqWriter { out: self.out, first: true })
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<StructWriter<'a>, Error> {
        self.out.push('{');
        Ok(StructWriter { out: self.out, first: true })
    }

    fn serialize_map(self, _len: Option<usize>) -> Result<MapWriter<'a>, Error> {
        self.out.push('{');
        Ok(MapWriter { out: self.out, first: true })
    }
}

pub struct SeqWriter<'a> {
    out: &'a mut String,
    first: bool,
}

impl<'a> SerializeSeq for SeqWriter<'a> {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        value.serialize(JsonWriter { out: self.out })
    }

    fn end(self) -> Result<(), Error> {
        self.out.push(']');
        Ok(())
    }
}

pub struct StructWriter<'a> {
    out: &'a mut String,
    first: bool,
}

impl<'a> SerializeStruct for StructWriter<'a> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        name: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        write_escaped(self.out, name);
        self.out.push(':');
        value.serialize(JsonWriter { out: self.out })
    }

    fn end(self) -> Result<(), Error> {
        self.out.push('}');
        Ok(())
    }
}

pub struct MapWriter<'a> {
    out: &'a mut String,
    first: bool,
}

impl<'a> SerializeMap for MapWriter<'a> {
    type Ok = ();
    type Error = Error;

    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Error> {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        // JSON keys must be strings: serialize the key, then require that
        // it produced a quoted string.
        let start = self.out.len();
        key.serialize(JsonWriter { out: self.out })?;
        if !self.out[start..].starts_with('"') {
            let rendered = self.out.split_off(start);
            write_escaped(self.out, &rendered);
        }
        self.out.push(':');
        value.serialize(JsonWriter { out: self.out })
    }

    fn end(self) -> Result<(), Error> {
        self.out.push('}');
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::{from_str, json, to_string};

    #[test]
    fn writer_output_reparses() {
        let v = json!({"name": "zmap", "ports": [80, 443], "frac": 2.5, "ok": true});
        let s = to_string(&v).unwrap();
        assert_eq!(from_str(&s).unwrap(), v);
    }

    #[test]
    fn escapes_are_symmetric() {
        let v = json!({"s": "a\"b\\c\nd"});
        let s = to_string(&v).unwrap();
        assert_eq!(from_str(&s).unwrap(), v);
    }
}
