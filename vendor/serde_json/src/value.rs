//! The JSON value tree.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Index;

/// Object representation: sorted map, like the real crate with the
/// `preserve_order` feature off.
pub type Map = BTreeMap<String, Value>;

/// A JSON number. Integers keep full 64-bit precision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            Number::NegInt(v) => u64::try_from(v).ok(),
            Number::Float(_) => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(_) => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::PosInt(v) => Some(v as f64),
            Number::NegInt(v) => Some(v as f64),
            Number::Float(v) => Some(v),
        }
    }
}

/// Any JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn is_u64(&self) -> bool {
        self.as_u64().is_some()
    }

    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    pub fn is_boolean(&self) -> bool {
        matches!(self, Value::Bool(_))
    }

    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }
}

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::to_string(self).map_err(|_| fmt::Error)?)
    }
}

// ---- From conversions (json! literal arguments) ----

macro_rules! impl_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number::PosInt(v as u64)) }
        }
    )*};
}
impl_from_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v as i64))
                }
            }
        }
    )*};
}
impl_from_int!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::Float(v))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

// ---- PartialEq against literals (assert_eq!(v["k"], 443) etc.) ----

macro_rules! impl_eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            // The temporary is two words; this mirrors upstream's shape.
            #[allow(clippy::cmp_owned)]
            fn eq(&self, other: &$t) -> bool {
                *self == Value::from(*other)
            }
        }
        impl PartialEq<Value> for $t {
            #[allow(clippy::cmp_owned)]
            fn eq(&self, other: &Value) -> bool {
                Value::from(*self) == *other
            }
        }
    )*};
}
impl_eq_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, bool);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl serde::Serialize for Value {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::{SerializeMap, SerializeSeq};
        match self {
            Value::Null => serializer.serialize_unit(),
            Value::Bool(b) => serializer.serialize_bool(*b),
            Value::Number(Number::PosInt(v)) => serializer.serialize_u64(*v),
            Value::Number(Number::NegInt(v)) => serializer.serialize_i64(*v),
            Value::Number(Number::Float(v)) => serializer.serialize_f64(*v),
            Value::String(s) => serializer.serialize_str(s),
            Value::Array(a) => {
                let mut seq = serializer.serialize_seq(Some(a.len()))?;
                for item in a {
                    seq.serialize_element(item)?;
                }
                seq.end()
            }
            Value::Object(m) => {
                let mut map = serializer.serialize_map(Some(m.len()))?;
                for (k, v) in m {
                    map.serialize_entry(k, v)?;
                }
                map.end()
            }
        }
    }
}
