//! Strict recursive-descent JSON parser.

use crate::value::{Map, Number, Value};
use crate::Error;

pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser { b: s.as_bytes(), i: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.i)));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), Error> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected '{}' at byte {}, found {:?}",
                c as char,
                self.i,
                self.peek().map(|b| b as char)
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.i
            ))),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.i)))
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c = self
                .peek()
                .ok_or_else(|| Error::msg("unterminated string"))?;
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = self
                        .peek()
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.i + 4 > self.b.len() {
                                return Err(Error::msg("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.b[self.i..self.i + 4])
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                            self.i += 4;
                            // Surrogate pairs are not produced by this
                            // workspace's writer; reject rather than mangle.
                            let ch = char::from_u32(code)
                                .ok_or_else(|| Error::msg("unsupported \\u code point"))?;
                            out.push(ch);
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the full code point.
                    let start = self.i - 1;
                    let width = utf8_width(c);
                    self.i = start + width;
                    if self.i > self.b.len() {
                        return Err(Error::msg("truncated UTF-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.b[start..self.i])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.i += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        if float {
            let v: f64 = text
                .parse()
                .map_err(|_| Error::msg(format!("bad number {text}")))?;
            Ok(Value::Number(Number::Float(v)))
        } else if let Some(stripped) = text.strip_prefix('-') {
            let mag: i64 = format!("-{stripped}")
                .parse()
                .map_err(|_| Error::msg(format!("bad number {text}")))?;
            Ok(Value::Number(Number::NegInt(mag)))
        } else {
            let v: u64 = text
                .parse()
                .map_err(|_| Error::msg(format!("bad number {text}")))?;
            Ok(Value::Number(Number::PosInt(v)))
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg(format!("expected ',' or ']' at byte {}", self.i))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let val = self.value()?;
            map.insert(key, val);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::msg(format!("expected ',' or '}}' at byte {}", self.i))),
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use crate::{from_str, json, Value};

    #[test]
    fn roundtrip_basics() {
        let v = from_str(r#"{"a": [1, -2, 3.5], "b": "x\ny", "c": true, "d": null}"#).unwrap();
        assert_eq!(v["a"][0], 1u64);
        assert_eq!(v["a"][1], -2);
        assert_eq!(v["a"][2].as_f64().unwrap(), 3.5);
        assert_eq!(v["b"], "x\ny");
        assert_eq!(v["c"], true);
        assert!(v["d"].is_null());
        assert!(v.get("missing").is_none());
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn json_macro_matches_parse() {
        let lit = json!([80, 443]);
        let parsed = from_str("[80,443]").unwrap();
        assert_eq!(lit, parsed);
        let obj = json!({"k": 1, "s": "v"});
        assert_eq!(obj, from_str(r#"{"k":1,"s":"v"}"#).unwrap());
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("nul").is_err());
        assert!(from_str("1 2").is_err());
    }
}
